"""Unit tests for the virtual remapping table (§VI, Fig 9b)."""

import pytest

from repro.hardware import Topology
from repro.loss.virtual_map import RemapFailed, VirtualMap


def fresh(side=4, mid=2.0, roles=(5, 6)):
    topo = Topology.square(side, mid)
    return topo, VirtualMap(topo, roles)


class TestIdentityStart:
    def test_roles_map_to_themselves(self):
        _, vmap = fresh(roles=(1, 2, 3))
        for role in (1, 2, 3):
            assert vmap.physical(role) == role
        assert vmap.occupied_sites() == {1, 2, 3}
        assert vmap.role_at(2) == 2
        assert vmap.role_at(0) is None

    def test_translate_sites(self):
        _, vmap = fresh(roles=(1, 2))
        assert vmap.translate_sites((1, 2)) == (1, 2)


class TestSpareCounting:
    def test_spares_toward_edge(self):
        # 4x4 grid, roles on 5 and 6 (row 1).  From site 5 eastward:
        # sites 6 (occupied), 7 (spare) -> 1 spare.
        _, vmap = fresh()
        assert vmap.spares_toward_edge(5, (0, 1)) == 1
        # Westward from 5: site 4 is spare -> 1.
        assert vmap.spares_toward_edge(5, (0, -1)) == 1
        # North from 5: site 1 spare -> 1; south: 9, 13 spares -> 2.
        assert vmap.spares_toward_edge(5, (-1, 0)) == 1
        assert vmap.spares_toward_edge(5, (1, 0)) == 2

    def test_best_direction_prefers_most_spares(self):
        _, vmap = fresh()
        assert vmap.best_direction(5) == (1, 0)  # south, 2 spares

    def test_lost_sites_are_not_spares(self):
        topo, vmap = fresh()
        topo.remove_atom(9)
        topo.remove_atom(13)
        assert vmap.spares_toward_edge(5, (1, 0)) == 0


class TestShift:
    def test_spare_loss_is_noop(self):
        topo, vmap = fresh()
        topo.remove_atom(0)
        assert vmap.shift_for_loss(0) == 0
        assert vmap.occupied_sites() == {5, 6}

    def test_single_shift_consumes_spare(self):
        topo, vmap = fresh(roles=(5,))
        topo.remove_atom(5)
        moves = vmap.shift_for_loss(5)
        assert moves == 1
        # East and south tie at 2 spares; east wins by direction order.
        assert vmap.physical(5) == 6
        assert vmap.role_at(5) is None

    def test_chain_shift(self):
        # Only south has spares (east/west/north atoms removed); roles 5
        # and 9 form a southward chain, so losing 5 pushes role 5 into 9
        # and role 9 into the spare at 13.
        topo = Topology.square(4, 2.0)
        vmap = VirtualMap(topo, (5, 9))
        for blocked in (6, 7, 4, 1):
            topo.remove_atom(blocked)
        topo.remove_atom(5)
        moves = vmap.shift_for_loss(5)
        assert moves == 2
        assert vmap.physical(5) == 9
        assert vmap.physical(9) == 13

    def test_shift_skips_lost_spare(self):
        # Only south reachable, and its first site is itself lost: the
        # shift must land on the next active site beyond the hole.
        topo = Topology.square(4, 2.0)
        vmap = VirtualMap(topo, (5,))
        for blocked in (6, 7, 4, 1, 9):
            topo.remove_atom(blocked)
        topo.remove_atom(5)
        vmap.shift_for_loss(5)
        assert vmap.physical(5) == 13

    def test_no_spares_raises(self):
        # 1x-wide column fully occupied: no direction has a spare.
        topo = Topology.square(2, 1.0)
        vmap = VirtualMap(topo, (0, 1, 2, 3))
        topo.remove_atom(0)
        with pytest.raises(RemapFailed):
            vmap.shift_for_loss(0)

    def test_shift_count_accumulates(self):
        topo, vmap = fresh(roles=(5,))
        topo.remove_atom(5)
        vmap.shift_for_loss(5)
        assert vmap.shift_count == 1

    def test_mapping_stays_bijective_after_shifts(self):
        topo = Topology.square(5, 2.0)
        roles = (6, 7, 8, 11, 12, 13)
        vmap = VirtualMap(topo, roles)
        import numpy as np
        rng = np.random.default_rng(3)
        for _ in range(6):
            occupied = sorted(vmap.occupied_sites())
            candidates = [s for s in topo.active_sites()]
            site = int(rng.choice(candidates))
            topo.remove_atom(site)
            try:
                vmap.shift_for_loss(site)
            except RemapFailed:
                break
            values = list(vmap.role_to_site.values())
            assert len(values) == len(set(values)) == len(roles)
            assert all(topo.is_active(s) for s in values)
            # Inverse map consistent.
            for role, site_now in vmap.role_to_site.items():
                assert vmap.site_to_role[site_now] == role
