"""Tests for the distributed worker fleet (repro.fleet + repro.serve).

The acceptance contract: with the server running and fleet workers
attached, N concurrent identical ``POST /run`` requests execute exactly
one job on exactly one worker; killing the worker that holds the lease
mid-execution reclaims the lease and the job completes on the survivor,
with stored envelope bytes identical to in-process execution.  The
dead-worker shapes (claim, stop heartbeating, expire, second claimant
completes exactly once) are exercised both at queue level with a fake
clock — no sleeps — and over a real socket with a real lease timeout.
"""

import dataclasses
import json
import threading
import time
import urllib.request

import pytest

from repro.__main__ import main
from repro.api import ResultStore, Session, all_experiments
from repro.api.session import install_default
from repro.fleet import FleetWorker, LeaseLost, LeaseTable, WorkerClient
from repro.serve import build_server
from repro.serve.jobs import DONE, FAILED, QUEUED, RUNNING, JobQueue


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLeaseTable:
    def _table(self, ttl=10.0):
        clock = FakeClock()
        return LeaseTable(ttl=ttl, clock=clock), clock

    def test_grant_and_heartbeat_renew(self):
        table, clock = self._table(ttl=10.0)
        lease = table.grant("j1", "w1")
        assert lease.expires_in(clock()) == pytest.approx(10.0)
        clock.advance(8.0)
        assert table.heartbeat("j1", "w1") == pytest.approx(10.0)
        clock.advance(8.0)  # 16s after grant: alive only thanks to renewal
        assert table.heartbeat("j1", "w1") == pytest.approx(10.0)
        assert table.get("j1").heartbeats == 2

    def test_missed_heartbeats_expire_the_lease(self):
        table, clock = self._table(ttl=10.0)
        table.grant("j1", "w1")
        clock.advance(10.0)
        with pytest.raises(LeaseLost, match="expired"):
            table.heartbeat("j1", "w1")
        expired = table.pop_expired()
        assert [lease.job_id for lease in expired] == ["j1"]
        assert table.pop_expired() == []
        assert table.expired_total == 1

    def test_wrong_worker_is_rejected(self):
        table, _ = self._table()
        table.grant("j1", "w1")
        with pytest.raises(LeaseLost, match="leased to w1"):
            table.heartbeat("j1", "w2")
        with pytest.raises(LeaseLost, match="leased to w1"):
            table.release("j1", "w2")

    def test_release_then_heartbeat_is_lost(self):
        table, _ = self._table()
        table.grant("j1", "w1")
        table.release("j1", "w1")
        with pytest.raises(LeaseLost, match="no lease"):
            table.heartbeat("j1", "w1")

    def test_live_lease_cannot_be_double_granted(self):
        table, clock = self._table(ttl=10.0)
        table.grant("j1", "w1")
        with pytest.raises(LeaseLost, match="already leased"):
            table.grant("j1", "w2")
        clock.advance(11.0)  # ...but an expired one can be re-granted
        lease = table.grant("j1", "w2")
        assert lease.worker == "w2"

    def test_release_after_expiry_is_lost(self):
        table, clock = self._table(ttl=5.0)
        table.grant("j1", "w1")
        clock.advance(6.0)
        with pytest.raises(LeaseLost, match="expired"):
            table.release("j1", "w1")

    def test_describe_and_active(self):
        table, clock = self._table(ttl=5.0)
        table.grant("j1", "w1")
        table.grant("j2", "w2")
        clock.advance(6.0)
        table.grant("j3", "w3")
        assert table.active() == 1
        held = table.describe()["held"]
        assert [entry["job"] for entry in held] == ["j3"]

    def test_ttl_validated(self):
        with pytest.raises(ValueError):
            LeaseTable(ttl=0)


ENVELOPE = {"experiment": "validation", "schema": 1, "data": {"ok": True}}


class TestJobQueueFleet:
    """Fleet dispatch at queue level: fake clock, no sockets, no sleeps."""

    def _queue(self, tmp_path, ttl=10.0):
        store = ResultStore(str(tmp_path / "store"))
        queue = JobQueue(lambda: None, workers=0, store=store,
                         lease_ttl=ttl)
        clock = FakeClock()
        queue.leases = LeaseTable(ttl=ttl, clock=clock)
        return queue, clock, store

    def test_claim_on_empty_queue_returns_none(self, tmp_path):
        queue, _, _ = self._queue(tmp_path)
        try:
            assert queue.claim("w1") is None
        finally:
            queue.shutdown()

    def test_claim_execute_complete_lifecycle(self, tmp_path):
        queue, _, store = self._queue(tmp_path)
        try:
            job, coalesced = queue.submit("validation", "k1", True, {})
            assert not coalesced and job.status == QUEUED
            claimed = queue.claim("w1")
            assert claimed is job
            assert (job.status, job.worker, job.attempts) == (RUNNING,
                                                              "w1", 1)
            assert queue.claim("w2") is None  # nothing else queued
            assert queue.heartbeat("w1", job.id) > 0
            queue.complete("w1", job.id, envelope=dict(ENVELOPE),
                           wall_s=1.5, tasks_executed=42)
            assert job.status == DONE
            assert job.wait(timeout=5)
            assert job.envelope == ENVELOPE
            assert (job.wall_s, job.tasks_executed) == (1.5, 42)
            # The envelope landed in the shared store under the job key.
            assert store.get("k1") == ENVELOPE
            snapshot = queue.metrics.snapshot()["fleet"]
            assert snapshot["claims"] == 1
            assert snapshot["completions"] == 1
            assert snapshot["leases_reclaimed"] == 0
        finally:
            queue.shutdown()

    def test_duplicate_submit_coalesces_onto_leased_job(self, tmp_path):
        queue, _, _ = self._queue(tmp_path)
        try:
            job, _ = queue.submit("validation", "k1", True, {})
            queue.claim("w1")
            duplicate, coalesced = queue.submit("validation", "k1", True, {})
            assert coalesced and duplicate is job
        finally:
            queue.shutdown()

    def test_error_complete_fails_the_job(self, tmp_path):
        queue, _, store = self._queue(tmp_path)
        try:
            job, _ = queue.submit("validation", "k1", True, {})
            queue.claim("w1")
            queue.complete("w1", job.id, error="RuntimeError: boom")
            assert job.status == FAILED
            assert job.error == "RuntimeError: boom"
            assert store.get("k1") is None
            # The key is no longer in flight: a resubmit starts fresh.
            retry, coalesced = queue.submit("validation", "k1", True, {})
            assert not coalesced and retry is not job
        finally:
            queue.shutdown()

    def test_dead_worker_reclaim_completes_exactly_once(self, tmp_path):
        """The satellite shape: claim, stop heartbeating, expire; the
        second worker claims and completes the same job exactly once,
        and the first worker's late result is refused."""
        queue, clock, store = self._queue(tmp_path, ttl=10.0)
        try:
            job, _ = queue.submit("validation", "k1", True, {})
            assert queue.claim("w1") is job
            clock.advance(5.0)
            queue.heartbeat("w1", job.id)   # w1 was alive at first...
            clock.advance(10.0)             # ...then silently died
            with pytest.raises(LeaseLost):
                queue.heartbeat("w1", job.id)
            assert queue.reap_expired() == 1
            assert (job.status, job.worker) == (QUEUED, None)
            survivor = queue.claim("w2")
            assert survivor is job and job.attempts == 2
            # The zombie wakes up and tries to report — refused.
            with pytest.raises(LeaseLost):
                queue.complete("w1", job.id, envelope=dict(ENVELOPE))
            assert job.status == RUNNING
            queue.complete("w2", job.id, envelope=dict(ENVELOPE))
            assert job.status == DONE and job.worker == "w2"
            # ...and the survivor's completion was the only one.
            with pytest.raises(LeaseLost, match="already completed"):
                queue.complete("w2", job.id, envelope=dict(ENVELOPE))
            assert store.get("k1") == ENVELOPE
            snapshot = queue.metrics.snapshot()["fleet"]
            assert snapshot["claims"] == 2
            assert snapshot["completions"] == 1
            assert snapshot["leases_reclaimed"] == 1
            fleet = queue.describe_fleet()
            assert fleet["workers"]["w1"]["leases_lost"] == 1
            assert fleet["workers"]["w2"]["completions"] == 1
        finally:
            queue.shutdown()

    def test_reclaimed_job_releases_waiters_only_once_done(self, tmp_path):
        queue, clock, _ = self._queue(tmp_path, ttl=10.0)
        try:
            job, _ = queue.submit("validation", "k1", True, {})
            queue.claim("w1")
            clock.advance(11.0)
            queue.reap_expired()
            assert not job.wait(timeout=0.05)  # reclaim is not completion
            queue.claim("w2")
            queue.complete("w2", job.id, envelope=dict(ENVELOPE))
            assert job.wait(timeout=5)
        finally:
            queue.shutdown()

    def test_heartbeat_unknown_job_is_key_error(self, tmp_path):
        queue, _, _ = self._queue(tmp_path)
        try:
            with pytest.raises(KeyError):
                queue.heartbeat("w1", "nope")
            with pytest.raises(KeyError):
                queue.complete("w1", "nope", envelope={})
        finally:
            queue.shutdown()

    def test_claim_after_shutdown_returns_none(self, tmp_path):
        queue, _, _ = self._queue(tmp_path)
        queue.submit("validation", "k1", True, {})
        queue.shutdown()
        assert queue.claim("w1") is None

    def test_local_threads_and_leases_coexist(self, tmp_path):
        """Hybrid mode: a queue with local workers still accepts fleet
        completions for jobs a remote worker claimed first."""
        gate = threading.Event()

        class GatedSession:
            tasks_executed = 0

            def run(self, experiment, quick=False, force=False, **params):
                gate.wait(timeout=10)
                result = type("R", (), {})()
                result.to_dict = lambda: dict(ENVELOPE)
                return result

        store = ResultStore(str(tmp_path / "store"))
        queue = JobQueue(GatedSession, workers=1, store=store)
        try:
            # Local thread takes the first job and parks on the gate.
            local_job, _ = queue.submit("validation", "k-local", True, {})
            deadline = time.time() + 5
            while local_job.status == QUEUED and time.time() < deadline:
                time.sleep(0.01)
            # A remote worker claims the second job meanwhile.
            remote_job, _ = queue.submit("validation", "k-remote", True, {})
            assert queue.claim("w1") is remote_job
            queue.complete("w1", remote_job.id, envelope=dict(ENVELOPE))
            gate.set()
            assert local_job.wait(timeout=10) and remote_job.wait(timeout=10)
            assert local_job.status == DONE and remote_job.status == DONE
        finally:
            gate.set()
            queue.shutdown()


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, dict(response.headers), response.read()


def _post(base, path, **payload):
    request = urllib.request.Request(
        base + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def _wait_for_job(base, job_id, timeout=60):
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, _, body = _get(base + f"/jobs/{job_id}")
        job = json.loads(body)
        if job["status"] in (DONE, FAILED):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


LEASE_TTL = 1.0


class TestFleetOverHTTP:
    """The full stack: fleet-only server (workers=0), real sockets,
    in-process FleetWorker pull loops."""

    @pytest.fixture
    def server(self, tmp_path):
        srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                           str(tmp_path / "cache"), workers=0, quiet=True,
                           lease_ttl=LEASE_TTL)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.close()
        thread.join(timeout=5)

    @pytest.fixture
    def base(self, server):
        return f"http://127.0.0.1:{server.port}"

    def _worker(self, base, tmp_path, name, **kwargs):
        """A FleetWorker with its own store/cache (nothing shared with
        the server except HTTP), proving results travel the wire."""
        def session_factory():
            return Session(jobs=1,
                           cache_dir=str(tmp_path / f"{name}-cache"),
                           store_dir=str(tmp_path / f"{name}-store"))

        kwargs.setdefault("poll_interval", 0.05)
        return FleetWorker(base, session_factory, worker_id=name, **kwargs)

    def test_fleet_worker_executes_submitted_job(self, base, server,
                                                 tmp_path, capsys):
        status, headers, body = _post(base, "/run", experiment="validation",
                                      quick=True, wait=False)
        assert status == 202
        job_id = json.loads(body)["id"]
        key = headers["X-Repro-Key"]

        worker = self._worker(base, tmp_path, "w-solo")
        done = worker.run(max_jobs=1)
        assert done == 1 and worker.jobs_done == 1

        job = _wait_for_job(base, job_id)
        assert job["status"] == DONE
        assert job["worker"] == "w-solo"
        assert job["tasks_executed"] > 0

        # The envelope the worker shipped over HTTP is served by the
        # server byte-identical to a fresh storeless CLI run.
        _, _, served = _get(base + f"/results/{key}")
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--no-cache"]) == 0
        assert capsys.readouterr().out.encode() == served

    def test_wait_true_post_blocks_until_fleet_completion(self, base,
                                                          tmp_path):
        worker = self._worker(base, tmp_path, "w-wait")
        thread = threading.Thread(target=worker.run,
                                  kwargs={"max_jobs": 1}, daemon=True)
        thread.start()
        try:
            status, headers, body = _post(base, "/run",
                                          experiment="validation",
                                          quick=True, wait=True)
            assert status == 200
            assert headers["X-Repro-Store"] == "miss"
            assert json.loads(body)["experiment"] == "validation"
        finally:
            worker.stop_event.set()
            thread.join(timeout=10)

    def test_concurrent_identical_posts_one_execution_one_worker(
            self, base, server, tmp_path, monkeypatch):
        """Acceptance: N concurrent identical POST /run requests execute
        exactly one job on exactly one worker."""
        from repro.api import registry

        real = registry._SPECS["validation"]
        calls = []

        def counting_runner(**kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.2)
            return real.runner(**kwargs)

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=counting_runner))
        workers = [self._worker(base, tmp_path, f"w-{i}") for i in range(2)]
        threads = [threading.Thread(target=w.run, daemon=True)
                   for w in workers]
        for thread in threads:
            thread.start()
        bodies, errors = [], []

        def request_once():
            try:
                bodies.append(_post(base, "/run", experiment="validation",
                                    quick=True, wait=True)[2])
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        requesters = [threading.Thread(target=request_once)
                      for _ in range(6)]
        try:
            for thread in requesters:
                thread.start()
            for thread in requesters:
                thread.join(timeout=60)
            assert not errors
            assert len(calls) == 1          # one execution...
            assert len(set(bodies)) == 1    # ...one payload for everyone
            # Waiters wake when the server finalizes the job, a moment
            # before the worker's complete() response lands — poll.
            deadline = time.time() + 5
            while (sum(w.jobs_done for w in workers) < 1
                   and time.time() < deadline):
                time.sleep(0.01)
            assert sum(w.jobs_done for w in workers) == 1  # ...one worker
        finally:
            for worker in workers:
                worker.stop_event.set()
            for thread in threads:
                thread.join(timeout=10)
        snapshot = server.app.metrics.snapshot()
        assert snapshot["jobs"]["coalesced"] >= 1
        assert snapshot["fleet"]["completions"] == 1

    def test_killed_worker_mid_lease_job_completes_on_survivor(
            self, base, server, tmp_path, capsys):
        """Acceptance: the worker holding the lease dies without a
        word (SIGKILL semantics: claim, then silence); the lease
        expires, the job requeues, and the survivor completes it —
        bytes identical to in-process execution."""
        # The "victim" claims by hand and then never speaks again.
        victim = WorkerClient(base, "w-victim")
        status, headers, body = _post(base, "/run", experiment="validation",
                                      quick=True, wait=False)
        job_id = json.loads(body)["id"]
        key = headers["X-Repro-Key"]
        claimed = victim.claim()
        assert claimed is not None and claimed["id"] == job_id
        assert claimed["attempt"] == 1
        assert claimed["lease_ttl_s"] == LEASE_TTL

        survivor = self._worker(base, tmp_path, "w-survivor")
        thread = threading.Thread(target=survivor.run,
                                  kwargs={"max_jobs": 1}, daemon=True)
        thread.start()
        try:
            job = _wait_for_job(base, job_id, timeout=60)
        finally:
            survivor.stop_event.set()
            thread.join(timeout=10)
        assert job["status"] == DONE
        assert job["worker"] == "w-survivor"
        assert job["attempts"] == 2

        # The zombie's late completion is refused (409 LeaseLost).
        with pytest.raises(LeaseLost):
            victim.complete(job_id, envelope={"experiment": "validation"})

        # Stored bytes identical to a fresh in-process CLI run.
        _, _, served = _get(base + f"/results/{key}")
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--no-cache"]) == 0
        assert capsys.readouterr().out.encode() == served

        metrics = json.loads(_get(base + "/metrics")[2])
        assert metrics["fleet"]["leases_reclaimed"] == 1
        assert metrics["fleet"]["claims"] == 2
        assert metrics["fleet"]["completions"] == 1
        workers = metrics["fleet_workers"]["workers"]
        assert workers["w-victim"]["leases_lost"] == 1
        assert workers["w-survivor"]["completions"] == 1

    def test_failed_execution_reports_failed_job(self, base, tmp_path,
                                                 monkeypatch):
        import dataclasses as dc

        from repro.api import registry

        real = registry._SPECS["validation"]

        def exploding_runner(**kwargs):
            raise RuntimeError("fleet backend exploded")

        monkeypatch.setitem(registry._SPECS, "validation",
                            dc.replace(real, runner=exploding_runner))
        _, _, body = _post(base, "/run", experiment="validation",
                           quick=True, wait=False)
        job_id = json.loads(body)["id"]
        worker = self._worker(base, tmp_path, "w-fail")
        worker.run(max_jobs=1)
        job = _wait_for_job(base, job_id)
        assert job["status"] == FAILED
        assert "fleet backend exploded" in job["error"]

    def test_claim_validation(self, base):
        request = urllib.request.Request(
            base + "/fleet/claim", data=b"{}",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "worker" in json.loads(excinfo.value.read())["error"]

    def test_heartbeat_unknown_job_404(self, base):
        client = WorkerClient(base, "w-x")
        with pytest.raises(RuntimeError, match="404"):
            client.heartbeat("nope")

    def test_idle_claim_returns_null_job(self, base):
        assert WorkerClient(base, "w-idle").claim() is None


class TestWorkerCLI:
    """One full-process smoke: `serve --port 0 --jobs 0` plus
    `python -m repro worker --max-jobs 1` in real subprocesses."""

    def test_worker_process_drains_a_job(self, tmp_path):
        import os
        import pathlib
        import re
        import signal
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(pathlib.Path(__file__).parent.parent / "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "server-store"), "--no-cache",
             "--jobs", "0", "--quiet"],
            env=env, stderr=subprocess.PIPE, text=True)
        worker = None
        try:
            first = server.stderr.readline()
            port = int(re.search(r"http://[^:]+:(\d+)", first).group(1))
            base = f"http://127.0.0.1:{port}"
            _, headers, body = _post(base, "/run", experiment="validation",
                                     quick=True, wait=False)
            job_id = json.loads(body)["id"]
            worker = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--server", base, "--jobs", "1", "--max-jobs", "1",
                 "--store", str(tmp_path / "worker-store"), "--no-cache",
                 "--poll", "0.1", "--id", "w-cli", "--quiet"],
                env=env, stderr=subprocess.PIPE, text=True)
            _, worker_err = worker.communicate(timeout=120)
            assert worker.returncode == 0, worker_err
            assert "drained: 1 job(s) completed" in worker_err
            job = _wait_for_job(base, job_id)
            assert job["status"] == DONE
            assert job["worker"] == "w-cli"
            key = headers["X-Repro-Key"]
            assert _get(base + f"/results/{key}")[0] == 200
            server.send_signal(signal.SIGINT)
            assert server.wait(timeout=15) == 130
        finally:
            for process in (worker, server):
                if process is not None and process.poll() is None:
                    process.kill()
            server.stderr.close()
            if worker is not None and worker.stderr:
                worker.stderr.close()

    def test_worker_argument_validation(self, capsys):
        assert main(["worker", "--server", "http://x", "--jobs", "0",
                     "--no-cache"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["worker", "--server", "ftp://x", "--no-cache"]) == 2
        assert "--server" in capsys.readouterr().err


import urllib.error  # noqa: E402  (used by TestFleetOverHTTP above)


class TestFleetCircuitFetch:
    """Content-addressed workloads across the fleet: a worker whose
    local circuit store has never seen a digest fetches it from the
    server, verifies it, caches it, and completes the job with envelope
    bytes identical to a local run holding the same circuit."""

    QASM = ("OPENQASM 2.0;\n"
            "qreg q[4];\n"
            "h q[0];\n"
            "cx q[0],q[1];\n"
            "rz(0.25) q[2];\n"
            "cx q[2],q[3];\n")

    @pytest.fixture
    def server(self, tmp_path):
        srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                           str(tmp_path / "cache"), workers=0, quiet=True,
                           lease_ttl=LEASE_TTL)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.close()
        thread.join(timeout=5)

    @pytest.fixture
    def base(self, server):
        return f"http://127.0.0.1:{server.port}"

    def _upload(self, base):
        request = urllib.request.Request(
            base + "/circuits", data=self.QASM.encode("utf-8"),
            headers={"Content-Type": "text/plain; charset=utf-8"},
            method="POST")
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())["digest"]

    def _worker(self, base, tmp_path, name):
        from repro.api.circuits import CircuitStore

        circuits = CircuitStore(str(tmp_path / f"{name}-circuits"))

        def session_factory():
            return Session(jobs=1,
                           cache_dir=str(tmp_path / f"{name}-cache"),
                           store_dir=str(tmp_path / f"{name}-store"),
                           circuits=circuits)

        worker = FleetWorker(base, session_factory, worker_id=name,
                             poll_interval=0.05)
        return worker, circuits

    def test_empty_store_worker_fetches_and_matches_local_run(
            self, base, tmp_path):
        digest = self._upload(base)
        params = {"workload": f"circuit:{digest}", "mids": [2.0]}
        status, headers, body = _post(base, "/run",
                                      experiment="workload-metrics",
                                      quick=True, params=params, wait=False)
        assert status == 202
        job_id = json.loads(body)["id"]
        key = headers["X-Repro-Key"]

        worker, circuits = self._worker(base, tmp_path, "w-fetch")
        assert not circuits.has(digest)  # genuinely cold
        assert worker.run(max_jobs=1) == 1

        job = _wait_for_job(base, job_id)
        assert job["status"] == DONE
        # The fetched program landed in the worker's local store, byte-
        # identical to the server's canonical text.
        assert circuits.has(digest)
        _, _, served_qasm = _get(base + f"/circuits/{digest}")
        assert circuits.get_qasm(digest) == served_qasm.decode("utf-8")

        # Envelope bytes == a purely local run holding the same circuit.
        local = Session(circuit_dir=str(tmp_path / "local-circuits"))
        assert local.circuits.add(self.QASM) == digest
        local_result = local.run("workload-metrics", quick=True,
                                 workload=f"circuit:{digest}", mids=(2.0,))
        _, _, served = _get(base + f"/results/{key}")
        from repro.api.store import canonical_json

        assert served.decode("utf-8") == canonical_json(
            local_result.to_dict())

    def test_second_job_reuses_the_cached_circuit(self, base, tmp_path):
        digest = self._upload(base)
        worker, circuits = self._worker(base, tmp_path, "w-warm")
        for rng in (0, 1):
            params = {"workload": f"circuit:{digest}", "mids": [2.0],
                      "rng": rng}
            _post(base, "/run", experiment="workload-metrics",
                  quick=True, params=params, wait=False)
        assert worker.run(max_jobs=2) == 2
        assert worker.jobs_done == 2
        assert circuits.stats()["entries"] == 1  # fetched exactly once

    def test_fetch_of_unknown_digest_is_a_runtime_error(self, base):
        client = WorkerClient(base, "w-miss")
        with pytest.raises(RuntimeError, match="404"):
            client.fetch_circuit("ab" * 32)

    def test_mismatched_fetch_is_refused(self, base, tmp_path,
                                         monkeypatch):
        """A server returning bytes that do not digest to what the job
        named must fail the job, not execute the wrong program."""
        digest = self._upload(base)
        params = {"workload": f"circuit:{digest}", "mids": [2.0]}
        _, _, body = _post(base, "/run", experiment="workload-metrics",
                           quick=True, params=params, wait=False)
        job_id = json.loads(body)["id"]

        worker, circuits = self._worker(base, tmp_path, "w-tamper")
        monkeypatch.setattr(
            WorkerClient, "fetch_circuit",
            lambda self, d: "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n")
        assert worker.run(max_jobs=1) == 1
        job = _wait_for_job(base, job_id)
        assert job["status"] == FAILED
        assert "digest" in job["error"]
