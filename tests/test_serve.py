"""Tests for the serving subsystem (repro.serve).

The tentpole contract, over a real socket: a cold ``POST /run`` and a
warm ``GET /results/<key>`` return envelopes byte-identical to ``python
-m repro run X --quick --format json`` for **every** quick-preset
experiment; the warm path executes zero tasks; and N concurrent
identical requests perform exactly one execution (in-flight
deduplication plus read-through sessions).
"""

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.__main__ import main
from repro.api import Session, all_experiments, store_key
from repro.api.session import install_default
from repro.serve import build_server
from repro.serve.jobs import DONE, FAILED, JobQueue


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


@pytest.fixture
def server(tmp_path):
    srv = build_server("127.0.0.1", 0, str(tmp_path / "store"),
                       str(tmp_path / "cache"), workers=2, quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.close()
    thread.join(timeout=5)


@pytest.fixture
def base(server):
    return f"http://127.0.0.1:{server.port}"


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, dict(response.headers), response.read()


def _post_run(base_url, **payload):
    request = urllib.request.Request(
        base_url + "/run", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def _http_error(callable_, *args, **kwargs) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_(*args, **kwargs)
    return excinfo.value


def _error_message(error: urllib.error.HTTPError) -> str:
    return json.loads(error.read())["error"]


class TestEndpoints:
    def test_healthz(self, base):
        status, _, body = _get(base + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_experiments_lists_every_registered_spec(self, base):
        _, _, body = _get(base + "/experiments")
        listing = {spec["name"]: spec
                   for spec in json.loads(body)["experiments"]}
        assert set(listing) == set(all_experiments())
        fig10 = listing["fig10"]
        assert {p["name"] for p in fig10["params"]} == {
            p.name for p in all_experiments()["fig10"].params}
        # Tuple-valued presets render as JSON lists.
        assert fig10["quick"]["mids"] == [2.0, 3.0]
        assert fig10["result_type"] == "Fig10Result"

    def test_experiment_detail_and_unknown(self, base):
        _, _, body = _get(base + "/experiments/validation")
        assert json.loads(body)["name"] == "validation"
        error = _http_error(_get, base + "/experiments/fig99")
        assert error.code == 404
        assert "unknown experiment" in _error_message(error)

    def test_results_rejects_non_key_paths(self, base):
        error = _http_error(_get, base + "/results/../../etc/passwd")
        assert error.code == 400
        error = _http_error(_get, base + "/results/" + "a" * 64)
        assert error.code == 404

    def test_unrouted_paths_404(self, base):
        assert _http_error(_get, base + "/nope").code == 404

    def test_run_request_validation(self, base):
        request = urllib.request.Request(
            base + "/run", data=b"{ not json", method="POST")
        assert _http_error(urllib.request.urlopen, request).code == 400

        error = _http_error(_post_run, base, quick=True)
        assert error.code == 400
        assert "experiment" in _error_message(error)

        error = _http_error(_post_run, base, experiment="fig99")
        assert error.code == 404

        error = _http_error(_post_run, base, experiment="validation",
                            params={"bogus": 1})
        assert error.code == 400
        payload = json.loads(error.read())
        assert "has no parameter" in payload["error"]
        # Structured type so clients re-raise without message parsing.
        assert payload["error_type"] == "TypeError"

        # Wrong params shape is rejected even when falsy ([] / false),
        # never silently coerced into a default-params run.
        for bad_params in ([], False, ""):
            error = _http_error(_post_run, base, experiment="validation",
                                params=bad_params)
            assert error.code == 400
            assert "JSON object" in _error_message(error)


class TestServingContract:
    def test_every_quick_experiment_cold_warm_and_cli_identical(
            self, base, server, capsys):
        """The acceptance criterion, for every registered experiment:
        cold POST /run, warm GET /results/<key>, warm POST /run, and the
        CLI's --format json output are all byte-identical; the warm
        paths recompute nothing."""
        store_dir = server.app.store.path
        for name in all_experiments():
            status, headers, cold = _post_run(
                base, experiment=name, quick=True, wait=True)
            assert status == 200
            assert headers["X-Repro-Store"] == "miss"
            key = headers["X-Repro-Key"]
            assert json.loads(cold)["experiment"] == name

            _, _, warm_get = _get(base + f"/results/{key}")
            assert warm_get == cold

            _, warm_headers, warm_post = _post_run(
                base, experiment=name, quick=True, wait=True)
            assert warm_headers["X-Repro-Store"] == "hit"
            assert warm_post == cold

            # The CLI against the same store replays with zero task
            # dispatch and prints the same bytes the server returned.
            assert main(["run", name, "--quick", "--format", "json",
                         "--no-cache", "--store", store_dir]) == 0
            captured = capsys.readouterr()
            assert captured.out.encode() == cold
            assert "replayed from result store" in captured.err

    def test_cold_bytes_match_a_storeless_cli_run(self, base, capsys):
        """One full independent recompute: the server's cold envelope
        equals a fresh `run validation --quick --format json` that never
        saw the store."""
        _, _, cold = _post_run(base, experiment="validation", quick=True,
                               wait=True)
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--no-cache"]) == 0
        assert capsys.readouterr().out.encode() == cold

    def test_warm_replay_executes_zero_tasks(self, base, server):
        """A job submitted after its key is already stored replays
        read-through: Session.tasks_executed == 0."""
        _, headers, _ = _post_run(base, experiment="validation",
                                  quick=True, wait=True)
        key = headers["X-Repro-Key"]
        spec = all_experiments()["validation"]
        assert key == store_key("validation",
                                spec.resolved_params(quick=True))
        job, coalesced = server.app.jobs.submit(
            "validation", key, True, {}, force=False)
        assert not coalesced
        assert job.wait(timeout=30)
        assert job.status == DONE
        assert job.tasks_executed == 0

    def test_concurrent_identical_requests_execute_once(
            self, base, server, monkeypatch):
        """N concurrent identical requests -> exactly one execution."""
        from repro.api import registry

        real = registry._SPECS["validation"]
        calls = []

        def counting_runner(**kwargs):
            calls.append(threading.get_ident())
            time.sleep(0.3)  # hold the job open so requests overlap
            return real.runner(**kwargs)

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=counting_runner))
        bodies = []
        errors = []

        def request_once():
            try:
                bodies.append(_post_run(base, experiment="validation",
                                        quick=True, wait=True)[2])
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=request_once)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(calls) == 1
        assert len(set(bodies)) == 1
        snapshot = server.app.metrics.snapshot()
        assert snapshot["jobs"]["coalesced"] >= 1

    def test_force_recomputes_and_skips_dedup(self, base, server,
                                              monkeypatch):
        from repro.api import registry

        real = registry._SPECS["validation"]
        calls = []

        def counting_runner(**kwargs):
            calls.append(1)
            return real.runner(**kwargs)

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=counting_runner))
        _post_run(base, experiment="validation", quick=True, wait=True)
        status, headers, _ = _post_run(base, experiment="validation",
                                       quick=True, force=True, wait=True)
        assert headers["X-Repro-Store"] == "miss"
        assert len(calls) == 2


class TestJobsEndpoint:
    def test_async_submit_then_poll_then_fetch(self, base):
        status, headers, body = _post_run(
            base, experiment="validation", quick=True, wait=False)
        assert status == 202
        submitted = json.loads(body)
        assert submitted["coalesced"] is False
        job_id = submitted["id"]

        deadline = time.time() + 60
        while time.time() < deadline:
            _, _, job_body = _get(base + f"/jobs/{job_id}")
            job = json.loads(job_body)
            if job["status"] in (DONE, FAILED):
                break
            time.sleep(0.05)
        assert job["status"] == DONE
        assert job["tasks_executed"] > 0
        assert job["wall_s"] >= 0
        _, _, envelope = _get(base + job["result_url"])
        assert json.loads(envelope)["experiment"] == "validation"

    def test_unknown_job_404(self, base):
        assert _http_error(_get, base + "/jobs/nope").code == 404

    def test_failed_job_surfaces_the_error(self, base, monkeypatch):
        from repro.api import registry

        real = registry._SPECS["validation"]

        def exploding_runner(**kwargs):
            raise RuntimeError("backend exploded")

        monkeypatch.setitem(registry._SPECS, "validation",
                            dataclasses.replace(real,
                                                runner=exploding_runner))
        error = _http_error(_post_run, base, experiment="validation",
                            quick=True, wait=True)
        assert error.code == 500
        assert "backend exploded" in _error_message(error)


class TestMetricsEndpoint:
    def test_counters_and_recent_ledger_window(self, base):
        _post_run(base, experiment="validation", quick=True, wait=True)
        _post_run(base, experiment="validation", quick=True, wait=True)
        _, _, body = _get(base + "/metrics")
        metrics = json.loads(body)
        assert metrics["store"]["hits"] == 1
        assert metrics["store"]["misses"] == 1
        assert metrics["jobs"]["submitted"] == 1
        assert metrics["jobs"]["completed"] == 1
        assert metrics["queue"]["workers"] == 2
        assert metrics["requests_by_route"]["POST /run"] == 2
        recent = metrics["recent_runs"]
        # Ledger: one miss (the job's read-through session) + one
        # store-hit served by the router.
        assert recent["events"] == recent["hits"] + recent["misses"]
        assert recent["hits"] == 1 and recent["misses"] == 1


class TestJobQueueUnit:
    """Queue semantics without sockets or real experiments."""

    class FakeSession:
        def __init__(self, log, gate):
            self.log = log
            self.gate = gate
            self.tasks_executed = 7

        def run(self, experiment, quick=False, force=False, **params):
            self.log.append(self)
            if not self.gate.wait(timeout=10):  # pragma: no cover
                raise TimeoutError("gate never opened")
            result = type("FakeResult", (), {})()
            result.to_dict = lambda: {"experiment": experiment}
            return result

    def _queue(self, log, gate, workers=2):
        return JobQueue(lambda: self.FakeSession(log, gate),
                        workers=workers)

    def test_inflight_duplicates_coalesce(self):
        log, gate = [], threading.Event()
        queue = self._queue(log, gate)
        try:
            first, coalesced_a = queue.submit("x", "k1", False, {})
            while first.status == "queued":
                time.sleep(0.01)  # wait until a worker holds the job
            second, coalesced_b = queue.submit("x", "k1", False, {})
            assert (coalesced_a, coalesced_b) == (False, True)
            assert second is first
            gate.set()
            assert first.wait(timeout=10)
            assert first.status == DONE
            assert first.tasks_executed == 7
            assert len(log) == 1
        finally:
            gate.set()
            queue.shutdown()

    def test_force_jobs_never_coalesce(self):
        log, gate = [], threading.Event()
        gate.set()
        queue = self._queue(log, gate)
        try:
            first, _ = queue.submit("x", "k1", False, {})
            forced, coalesced = queue.submit("x", "k1", False, {},
                                             force=True)
            assert coalesced is False
            assert forced is not first
            assert forced.wait(timeout=10) and first.wait(timeout=10)
        finally:
            queue.shutdown()

    def test_every_job_gets_its_own_session(self):
        log, gate = [], threading.Event()
        gate.set()
        queue = self._queue(log, gate)
        try:
            jobs = [queue.submit("x", f"k{i}", False, {})[0]
                    for i in range(4)]
            for job in jobs:
                assert job.wait(timeout=10)
            assert len(log) == 4
            assert len(set(map(id, log))) == 4  # four distinct sessions
        finally:
            queue.shutdown()

    def test_shutdown_rejects_new_jobs_but_finishes_queued_ones(self):
        log, gate = [], threading.Event()
        queue = self._queue(log, gate, workers=1)
        job, _ = queue.submit("x", "k1", False, {})
        gate.set()
        queue.shutdown(wait=True)
        assert job.status == DONE
        with pytest.raises(RuntimeError):
            queue.submit("x", "k2", False, {})

    def test_worker_count_validated(self):
        # workers=0 is legal (fleet-only dispatch); negatives are not.
        with pytest.raises(ValueError):
            JobQueue(lambda: None, workers=-1)

    def test_raising_session_factory_fails_the_job_not_the_worker(self):
        calls = []

        def factory():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("factory exploded")
            gate = threading.Event()
            gate.set()
            return self.FakeSession([], gate)

        queue = JobQueue(factory, workers=1)
        try:
            doomed, _ = queue.submit("x", "k1", False, {})
            assert doomed.wait(timeout=10)
            assert doomed.status == FAILED
            assert "factory exploded" in doomed.error
            # The worker survived and the key is no longer in flight.
            healthy, coalesced = queue.submit("x", "k1", False, {})
            assert coalesced is False
            assert healthy.wait(timeout=10)
            assert healthy.status == DONE
        finally:
            queue.shutdown()


class TestSessionThreadIsolation:
    def test_two_threads_activate_independent_sessions(self, tmp_path):
        """The contextvar design under real concurrency: each thread's
        activate() is invisible to the other."""
        from repro.api.session import current_session

        barrier = threading.Barrier(2, timeout=10)
        seen = {}

        def work(name, session):
            with session.activate():
                barrier.wait()  # both threads are inside activate()
                seen[name] = current_session()
                barrier.wait()

        one = Session(jobs=1, cache_dir=str(tmp_path / "a"))
        two = Session(jobs=3, cache_dir=str(tmp_path / "b"))
        threads = [threading.Thread(target=work, args=("one", one)),
                   threading.Thread(target=work, args=("two", two))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert seen["one"] is one
        assert seen["two"] is two


SAMPLE_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
rz(0.5) q[2];
cx q[2],q[3];
"""


def _post_circuit(base_url, text):
    request = urllib.request.Request(
        base_url + "/circuits", data=text.encode("utf-8"),
        headers={"Content-Type": "text/plain; charset=utf-8"},
        method="POST")
    with urllib.request.urlopen(request) as response:
        return (response.status, dict(response.headers),
                json.loads(response.read()))


class TestCircuitsEndpoint:
    def test_upload_is_idempotent(self, base):
        status, headers, first = _post_circuit(base, SAMPLE_QASM)
        assert status == 200
        assert first["created"] is True
        assert first["ref"] == f"circuit:{first['digest']}"
        assert headers["X-Repro-Circuit"] == first["digest"]
        # Same content, different comments: same address, not created.
        _, _, again = _post_circuit(base, "// note\n" + SAMPLE_QASM)
        assert again["digest"] == first["digest"]
        assert again["created"] is False

    def test_get_returns_canonical_text(self, base):
        from repro.circuits import from_qasm, to_qasm

        _, _, uploaded = _post_circuit(base, SAMPLE_QASM)
        status, headers, body = _get(f"{base}/circuits/{uploaded['digest']}")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert body.decode("utf-8") == to_qasm(from_qasm(SAMPLE_QASM))

    def test_listing_reports_uploads(self, base):
        _, _, uploaded = _post_circuit(base, SAMPLE_QASM)
        _, _, body = _get(f"{base}/circuits")
        listing = json.loads(body)["circuits"]
        assert uploaded["digest"] in {row["digest"] for row in listing}

    def test_malformed_qasm_is_a_400_with_the_line(self, base):
        request = urllib.request.Request(
            base + "/circuits", data=b"OPENQASM 2.0;\nqreg q[2];\nbad q[0];",
            method="POST")
        error = _http_error(urllib.request.urlopen, request)
        assert error.code == 400
        assert "line 3" in _error_message(error)

    def test_unknown_and_malformed_digest(self, base):
        assert _http_error(urllib.request.urlopen,
                           f"{base}/circuits/{'ab' * 32}").code == 404
        assert _http_error(urllib.request.urlopen,
                           f"{base}/circuits/nothex").code == 400

    def test_run_against_digest_cold_then_warm(self, base):
        """The acceptance path: POST /circuits, then POST /run naming
        the digest — cold computes, warm replays byte-identically from
        the store."""
        _, _, uploaded = _post_circuit(base, SAMPLE_QASM)
        params = {"workload": uploaded["ref"], "mids": [2.0]}
        status, cold_headers, cold = _post_run(
            base, experiment="workload-metrics", quick=True, params=params,
            wait=True)
        assert status == 200
        assert cold_headers["X-Repro-Store"] == "miss"
        status, warm_headers, warm = _post_run(
            base, experiment="workload-metrics", quick=True, params=params,
            wait=True)
        assert warm_headers["X-Repro-Store"] == "hit"
        assert warm == cold
        envelope = json.loads(cold)
        assert envelope["data"]["fields"]["workload"] == uploaded["ref"]
        assert envelope["data"]["fields"]["realized_size"] == 4

    def test_run_against_unknown_digest_is_a_400(self, base):
        error = _http_error(
            _post_run, base, experiment="workload-metrics", quick=True,
            params={"workload": f"circuit:{'ab' * 32}"}, wait=True)
        assert error.code == 400
        assert "upload" in _error_message(error)

    def test_sweep_over_uploaded_circuit_dedups_cells(self, base):
        """A sweep whose cells name an uploaded digest expands, runs,
        and replays against the store like any named-benchmark sweep."""
        from repro.api import RemoteSession, SweepSpec

        _, _, uploaded = _post_circuit(base, SAMPLE_QASM)
        remote = RemoteSession(base)
        spec = SweepSpec("workload-metrics", axes={"rng": (0, 1)},
                         base={"workload": uploaded["ref"],
                               "mids": (2.0,)}, quick=True)
        first = remote.run_sweep(spec)
        assert len(first.results) == 2
        again = remote.run_sweep(spec)
        assert again.to_dict() == first.to_dict()
        assert remote.hits == 2  # the overlap replayed from the store

    def test_remote_session_circuit_helpers(self, base):
        from repro.api import RemoteSession
        from repro.circuits import from_qasm, to_qasm

        remote = RemoteSession(base)
        digest = remote.upload_circuit(SAMPLE_QASM)
        assert remote.circuit_qasm(digest) == to_qasm(from_qasm(SAMPLE_QASM))
        with pytest.raises(ValueError):
            remote.upload_circuit("OPENQASM 2.0;\nqreg q[1];\nbad q[0];")
        with pytest.raises(KeyError):
            remote.circuit_qasm("ab" * 32)

    def test_metrics_reports_the_circuit_store(self, base):
        _post_circuit(base, SAMPLE_QASM)
        _, _, body = _get(f"{base}/metrics")
        metrics = json.loads(body)
        assert metrics["circuit_store"]["entries"] >= 1
        assert metrics["circuits"]["uploaded"] >= 1
