"""Smoke + shape tests for every figure driver (reduced parameters).

Each test regenerates a miniature version of the corresponding paper
figure and asserts the qualitative claim the figure makes — who wins, in
which direction the curve bends — rather than absolute numbers.
"""

import pytest

from repro.experiments import (
    fig3_gate_count,
    fig4_depth,
    fig5_serialization,
    fig6_multiqubit,
    fig7_success,
    fig8_program_size,
    fig10_loss_tolerance,
    fig11_shot_success,
    fig12_overhead,
    fig13_sensitivity,
    fig14_timeline,
    validation,
)

SMALL_MIDS = (2.0, 3.0)


@pytest.fixture(scope="module")
def fig3_result():
    return fig3_gate_count.run(
        benchmarks=("bv", "cuccaro"), mids=SMALL_MIDS,
        max_size=30, size_step=10, bv_line_sizes=(15, 27),
    )


class TestFig3:
    def test_savings_positive_and_growing(self, fig3_result):
        for benchmark in ("bv", "cuccaro"):
            s2 = fig3_result.saving(benchmark, 2.0)
            s3 = fig3_result.saving(benchmark, 3.0)
            assert s2 >= 0.0
            assert s3 >= s2 - 0.02  # growth up to small heuristic noise

    def test_bv_series_decreasing_in_mid(self, fig3_result):
        for size, series in fig3_result.bv_series.items():
            counts = [c for _, c in series]
            assert counts[0] >= counts[-1]

    def test_format_renders(self, fig3_result):
        text = fig3_result.format()
        assert "Gate Count Savings" in text
        assert "bv" in text


class TestFig4:
    def test_depth_savings(self):
        result = fig4_depth.run(
            benchmarks=("bv",), mids=SMALL_MIDS,
            max_size=30, size_step=10, qft_line_sizes=(10,),
        )
        assert result.saving("bv", 3.0) > 0.0
        assert "Depth Savings" in result.format()


class TestFig5:
    def test_parallel_benchmark_serializes_most(self):
        result = fig5_serialization.run(
            benchmarks=("bv", "qft-adder"), mids=(3.0,),
            max_size=20, size_step=10, qaoa_line_sizes=(12,),
        )
        # Zones cost the parallel QFT-adder more depth than serial BV.
        assert (result.increase("qft-adder", 3.0)
                >= result.increase("bv", 3.0))
        assert result.increase("bv", 3.0) >= 0.0

    def test_zoned_depth_at_least_ideal(self):
        result = fig5_serialization.run(
            benchmarks=("qaoa",), mids=(3.0,),
            max_size=16, size_step=8, qaoa_line_sizes=(12,),
        )
        for series in result.qaoa_series.values():
            for _, zoned, ideal in series:
                assert zoned >= ideal


class TestFig6:
    def test_native_wins_everywhere_above_mid1(self):
        result = fig6_multiqubit.run(sizes=(16,), mids=(2.0, 3.0))
        for point in result.points:
            if point.mid >= 2.0:
                assert point.native_gates < point.decomposed_gates
                assert point.native_depth <= point.decomposed_depth

    def test_mid1_curves_coincide(self):
        result = fig6_multiqubit.run(sizes=(16,), mids=(2.0,))
        for point in result.points:
            if point.mid == 1.0:
                assert point.native_gates == point.decomposed_gates

    def test_format(self):
        result = fig6_multiqubit.run(sizes=(12,), mids=(2.0,))
        assert "Native 3-Qubit" in result.format()


class TestFig7:
    def test_na_diverges_at_higher_error(self):
        result = fig7_success.run(
            benchmarks=("bv", "cnu"), program_size=20, error_points=9,
        )
        for cmp_result in result.comparisons.values():
            na_div, sc_div = cmp_result.divergence_error()
            assert na_div >= sc_div

    def test_curves_monotone(self):
        result = fig7_success.run(benchmarks=("bv",), program_size=16,
                                  error_points=7)
        curve = result.comparisons["bv"].na_curve
        errs = [program_err for _, program_err in curve]
        assert errs == sorted(errs)
        assert "Success Rate" in result.format()


class TestFig8:
    def test_na_runs_larger_programs(self):
        result = fig8_program_size.run(
            benchmarks=("bv",), max_size=30, size_step=5, error_points=9,
        )
        assert result.advantage_points("bv") >= 1
        # And SC never runs a larger program than NA at any error.
        na_curve, sc_curve = result.curves["bv"]
        for (_, na_size), (_, sc_size) in zip(na_curve, sc_curve):
            assert na_size >= sc_size

    def test_size_curves_monotone_decreasing(self):
        result = fig8_program_size.run(
            benchmarks=("cuccaro",), max_size=30, size_step=5,
            error_points=7,
        )
        na_curve, _ = result.curves["cuccaro"]
        sizes = [s for _, s in na_curve]
        assert sizes == sorted(sizes, reverse=True)
        assert "Largest Runnable" in result.format()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_loss_tolerance.run(
            benchmarks=("cnu",), mids=(2.0, 4.0), program_size=20,
            trials=2, rng=0,
        )

    def test_recompile_dominates(self, result):
        for mid in (2.0, 4.0):
            recompile = result.fraction("cnu", "recompile", mid)
            remap = result.fraction("cnu", "virtual remapping", mid)
            assert recompile >= remap

    def test_tolerance_grows_with_mid(self, result):
        assert (result.fraction("cnu", "recompile", 4.0)
                >= result.fraction("cnu", "recompile", 2.0))

    def test_compile_small_absent_at_mid2(self, result):
        assert ("cnu", "compile small", 2.0) not in result.cells
        assert ("cnu", "compile small", 4.0) in result.cells
        assert "Max Atom Loss" in result.format()


class TestFig11:
    def test_success_never_increases_for_reroute(self):
        # Single trial: pointwise averages of ragged traces may wobble when
        # a short (low) trial ends, but each individual trace is monotone.
        result = fig11_shot_success.run(
            benchmarks=("cnu",), strategies=("reroute",), mids=(2.0,),
            max_holes=8, program_size=16, trials=1, rng=0,
        )
        trace = result.trace("cnu", "reroute", 2.0)
        for earlier, later in zip(trace, trace[1:]):
            assert later <= earlier + 1e-9
        assert "Shot Success" in result.format()

    def test_base_success_near_target(self):
        result = fig11_shot_success.run(
            benchmarks=("cnu",), strategies=("recompile",), mids=(3.0,),
            max_holes=2, program_size=16, trials=1, rng=0,
        )
        trace = result.trace("cnu", "recompile", 3.0)
        assert trace[0] == pytest.approx(0.6, abs=0.05)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_overhead.run(
            strategies=("virtual remapping", "always reload",
                        "c. small+reroute"),
            mids=(3.0,), shots=120, program_size=20, rng=0,
        )

    def test_always_reload_is_worst(self, result):
        reload_overhead = result.overhead("always reload", 3.0)
        for name in ("virtual remapping", "c. small+reroute"):
            assert result.overhead(name, 3.0) <= reload_overhead

    def test_reload_dominates_breakdown(self, result):
        run_result = result.runs[("always reload", 3.0)]
        kinds = run_result.time_by_kind()
        assert kinds["reload"] > kinds["fluorescence"]
        assert "Overhead Time" in result.format()


class TestFig13:
    def test_improvement_extends_shot_runs(self):
        result = fig13_sensitivity.run(
            mids=(4.0,), factors=(1.0, 30.0), shots_per_run=150,
            program_size=20, rng=0,
        )
        series = result.series(4.0)
        assert series[-1][1] >= series[0][1]
        assert "Successful Shots" in result.format()


class TestFig14:
    def test_twenty_successful_shots(self):
        result = fig14_timeline.run(program_size=16, target_shots=10)
        assert result.run_result.shots_successful == 10
        text = result.format()
        assert "Timeline" in text
        assert "reload" in text

    def test_reload_and_fluorescence_dominate(self):
        result = fig14_timeline.run(program_size=16, target_shots=10)
        kinds = result.run_result.time_by_kind()
        overhead = kinds["reload"] + kinds["fluorescence"]
        assert overhead > 0.5 * result.run_result.total_time


class TestValidation:
    def test_all_cases_equivalent(self):
        result = validation.run()
        assert result.all_equivalent
        assert "validation" in result.format().lower()
