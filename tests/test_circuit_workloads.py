"""Tests for content-addressed circuit workloads.

The tentpole contract: a user-supplied program is a first-class
workload.  Its identity is the canonical gate-stream digest
(``repro.circuits.digest``), it persists in a content-addressed
:class:`~repro.api.circuits.CircuitStore`, any experiment declaring a
circuit parameter accepts it as a ``circuit:<digest>`` reference, and —
critically — the typed :class:`~repro.workloads.ref.WorkloadRef` and
its string spelling produce the *same* store key, so uploaded-circuit
runs dedup and replay exactly like named-benchmark runs.
"""

import os

import pytest

from repro.api import Session, get_experiment, store_key
from repro.api.circuits import CircuitStore
from repro.api.session import install_default
from repro.circuits import Circuit, from_qasm, to_qasm
from repro.circuits.digest import (
    circuit_digest,
    circuit_ref,
    is_circuit_digest,
    parse_circuit_ref,
)
from repro.circuits.gates import cx, h, measure, rz
from repro.exec.keys import task_key
from repro.workloads import (
    BenchmarkInstance,
    WorkloadRef,
    iter_circuit_digests,
    resolve_circuit,
)
from repro.workloads.registry import BENCHMARK_ORDER, build_circuit, get_benchmark


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


def _sample_circuit():
    circuit = Circuit(3)
    circuit.append(h(0))
    circuit.append(cx(0, 1))
    circuit.append(rz(0.5, 2))
    circuit.append(measure(1))
    return circuit


class TestCircuitDigest:
    def test_deterministic(self):
        assert circuit_digest(_sample_circuit()) == \
            circuit_digest(_sample_circuit())

    def test_is_64_hex(self):
        assert is_circuit_digest(circuit_digest(_sample_circuit()))

    def test_gate_order_matters(self):
        a, b = Circuit(2), Circuit(2)
        a.append(h(0)); a.append(cx(0, 1))
        b.append(cx(0, 1)); b.append(h(0))
        assert circuit_digest(a) != circuit_digest(b)

    def test_params_and_width_matter(self):
        base = _sample_circuit()
        tweaked = Circuit(3)
        tweaked.append(h(0))
        tweaked.append(cx(0, 1))
        tweaked.append(rz(0.5000001, 2))
        tweaked.append(measure(1))
        assert circuit_digest(base) != circuit_digest(tweaked)
        wider = Circuit(4)
        for gate in base.gates:
            wider.append(gate)
        assert circuit_digest(base) != circuit_digest(wider)

    def test_qasm_round_trip_preserves_digest(self):
        circuit = _sample_circuit()
        assert circuit_digest(from_qasm(to_qasm(circuit))) == \
            circuit_digest(circuit)

    def test_ref_spelling(self):
        digest = circuit_digest(_sample_circuit())
        assert circuit_ref(digest) == f"circuit:{digest}"
        assert parse_circuit_ref(circuit_ref(digest)) == digest
        assert parse_circuit_ref("bv") is None
        with pytest.raises(ValueError, match="malformed circuit"):
            parse_circuit_ref("circuit:nothex")


class TestCircuitStore:
    def test_add_get_round_trip(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        circuit = _sample_circuit()
        digest = store.add_circuit(circuit)
        assert digest == circuit_digest(circuit)
        assert store.has(digest)
        fetched = store.get(digest)
        assert circuit_digest(fetched) == digest
        assert store.get_qasm(digest) == to_qasm(circuit)

    def test_add_is_idempotent(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        text = to_qasm(_sample_circuit())
        first = store.add(text)
        # Re-uploading with different comments/whitespace lands on the
        # same content address — comments are not part of identity.
        second = store.add("// a comment\n" + text)
        assert first == second
        assert store.stats()["entries"] == 1

    def test_missing_digest_is_none(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        assert store.get("ab" * 32) is None
        assert store.get_qasm("ab" * 32) is None
        assert not store.has("ab" * 32)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        digest = store.add(to_qasm(_sample_circuit()))
        path = os.path.join(str(tmp_path), digest[:2], digest + ".qasm")
        other = Circuit(2)
        other.append(h(0))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(to_qasm(other))
        # The stored bytes no longer digest to their address: refuse.
        assert store.get(digest) is None

    def test_gc_evicts_down_to_budget(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        for width in range(2, 8):
            store.add_circuit(build_circuit("bv", width))
        assert store.stats()["entries"] == 6
        outcome = store.gc(0)
        assert outcome["removed"] == 6
        assert store.stats()["entries"] == 0

    def test_malformed_qasm_rejected_with_line(self, tmp_path):
        store = CircuitStore(str(tmp_path))
        with pytest.raises(ValueError, match="line 3"):
            store.add("OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n")
        assert store.stats()["entries"] == 0


class TestWorkloadRef:
    def test_parse_family(self):
        ref = WorkloadRef.parse("bv")
        assert ref == WorkloadRef(family="bv")
        assert not ref.is_circuit
        assert str(ref) == "bv"

    def test_parse_family_at_size(self):
        ref = WorkloadRef.parse("cuccaro@12")
        assert ref == WorkloadRef(family="cuccaro", size=12)
        assert str(ref) == "cuccaro@12"

    def test_parse_circuit_ref(self):
        digest = circuit_digest(_sample_circuit())
        ref = WorkloadRef.parse(f"circuit:{digest}")
        assert ref.is_circuit and ref.digest == digest
        assert str(ref) == f"circuit:{digest}"

    def test_parse_is_idempotent_on_refs(self):
        ref = WorkloadRef(family="bv", size=8)
        assert WorkloadRef.parse(ref) is ref

    def test_unknown_family_names_the_known_set(self):
        with pytest.raises(ValueError, match="qaoa"):
            WorkloadRef.parse("nonsense")

    def test_malformed_size_and_digest(self):
        with pytest.raises(ValueError, match="family@<integer>"):
            WorkloadRef.parse("bv@big")
        with pytest.raises(ValueError, match="malformed circuit"):
            WorkloadRef.parse("circuit:xyz")
        with pytest.raises(ValueError, match="workload reference"):
            WorkloadRef.parse(42)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            WorkloadRef()
        with pytest.raises(ValueError, match="exactly one"):
            WorkloadRef(family="bv", digest="ab" * 32)
        with pytest.raises(ValueError, match="size"):
            WorkloadRef(digest="ab" * 32, size=8)

    def test_typed_ref_and_string_share_one_store_key(self):
        """The keying contract: WorkloadRef(store_form) folds to its
        string spelling, so both spellings hit the same stored entry."""
        typed = store_key("workload-metrics",
                          {"workload": WorkloadRef(family="bv", size=20),
                           "program_size": 20, "mids": (2.0,), "rng": 0})
        spelled = store_key("workload-metrics",
                            {"workload": "bv@20", "program_size": 20,
                             "mids": (2.0,), "rng": 0})
        assert typed == spelled
        assert task_key(w=WorkloadRef(family="bv", size=20)) == \
            task_key(w="bv@20")

    def test_digest_ref_keys_differently_from_family(self):
        digest = circuit_digest(_sample_circuit())
        assert task_key(w=WorkloadRef(digest=digest)) != task_key(w="bv")


class TestResolveCircuit:
    def test_named_family_matches_registry(self):
        assert resolve_circuit("bv", 8).gates == build_circuit("bv", 8).gates

    def test_embedded_size_wins(self):
        assert resolve_circuit("bv@10", 6).num_qubits == \
            build_circuit("bv", 10).num_qubits

    def test_family_without_size_raises(self):
        with pytest.raises(ValueError, match="no size"):
            resolve_circuit("bv")

    def test_digest_resolves_through_active_session(self, tmp_path):
        session = Session(circuit_dir=str(tmp_path))
        circuit = _sample_circuit()
        digest = session.circuits.add_circuit(circuit)
        with session.activate():
            resolved = resolve_circuit(f"circuit:{digest}")
        assert circuit_digest(resolved) == digest

    def test_unknown_digest_says_upload_first(self, tmp_path):
        with Session(circuit_dir=str(tmp_path)).activate():
            with pytest.raises(KeyError, match="upload"):
                resolve_circuit("circuit:" + "ab" * 32)


class TestCircuitParams:
    def test_workload_metrics_declares_its_circuit_param(self):
        assert get_experiment("workload-metrics").circuit_params == \
            ("workload",)

    def test_resolve_rejects_bad_refs_naming_experiment_and_param(self):
        spec = get_experiment("workload-metrics")
        with pytest.raises(ValueError,
                           match=r"'workload-metrics'.*'workload'"):
            spec.resolved_params(overrides={"workload": "not-a-family"})

    def test_resolve_accepts_all_three_spellings(self, tmp_path):
        spec = get_experiment("workload-metrics")
        digest = "ab" * 32
        for value in ("bv", "qaoa@12", f"circuit:{digest}"):
            resolved = spec.resolved_params(overrides={"workload": value})
            assert resolved["workload"] == value

    def test_iter_circuit_digests_walks_nested_params(self):
        d1, d2 = "ab" * 32, "cd" * 32
        params = {
            "workload": f"circuit:{d1}",
            "extras": ({"inner": WorkloadRef(digest=d2)}, "bv"),
            "size": 10,
        }
        assert sorted(iter_circuit_digests(params)) == sorted([d1, d2])

    def test_run_with_digest_end_to_end(self, tmp_path):
        """An uploaded circuit rides Session.run + the result store:
        cold computes, warm replays byte-identically with zero tasks."""
        session = Session(circuit_dir=str(tmp_path / "circuits"),
                          store_dir=str(tmp_path / "store"))
        digest = session.circuits.add(to_qasm(_sample_circuit()))
        cold = session.run("workload-metrics", quick=True,
                           workload=f"circuit:{digest}")
        assert cold.realized_size == 3
        assert f"circuit:{digest}" in cold.format()
        warm = Session(circuit_dir=str(tmp_path / "circuits"),
                       store_dir=str(tmp_path / "store"))
        replay = warm.run("workload-metrics", quick=True,
                          workload=f"circuit:{digest}")
        assert replay.to_dict() == cold.to_dict()
        assert warm.hits == 1 and warm.tasks_executed == 0


class TestSizeLattice:
    """`Benchmark.realize` is the machine-checkable form of `size_rule`:
    for every family, every requested size must realize to exactly the
    width the builder produces."""

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_realized_size_matches_built_circuit(self, name):
        bench = get_benchmark(name)
        for requested in range(bench.min_size, bench.min_size + 10):
            assert bench.realized_size(requested) == \
                bench.circuit(requested).num_qubits, (name, requested)

    def test_pinned_lattice_points(self):
        # The rounding behaviour is part of the public contract: pin it.
        assert get_benchmark("bv").realized_size(7) == 7
        assert get_benchmark("cnu").realized_size(9) == 8
        assert get_benchmark("cuccaro").realized_size(11) == 10
        assert get_benchmark("qft-adder").realized_size(9) == 8
        assert get_benchmark("qaoa").realized_size(7) == 7

    def test_below_min_size_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            get_benchmark("cuccaro").realized_size(3)

    def test_instance_carries_realized_metadata(self):
        instance = get_benchmark("cuccaro").instance(11)
        assert isinstance(instance, BenchmarkInstance)
        assert instance.requested_size == 11
        assert instance.realized_size == 10
        assert instance.circuit.num_qubits == 10

    def test_workload_metrics_surfaces_realized_size(self):
        result = Session().run("workload-metrics", workload="cuccaro",
                               program_size=11, mids=(2.0,))
        assert result.program_size == 11
        assert result.realized_size == 10
        assert "requested 11, realized 10" in result.format()
