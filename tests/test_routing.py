"""Unit tests for SWAP proposal and reroute path search."""

import pytest

from repro.core.routing import (
    SwapProposal,
    gate_span,
    propose_swap,
    reroute_path_swaps,
)
from repro.core.weights import InteractionWeights
from repro.hardware import Topology


def layout(pairs):
    phi = dict(pairs)
    return phi, {site: q for q, site in phi.items()}


class TestGateSpan:
    def test_pair(self):
        topo = Topology.square(4, 1.0)
        assert gate_span([0, 3], topo) == pytest.approx(3.0)

    def test_triple_max_pairwise(self):
        topo = Topology.square(4, 1.0)
        assert gate_span([0, 1, 3], topo) == pytest.approx(3.0)


class TestProposeSwap:
    def test_moves_strictly_closer(self):
        topo = Topology.square(4, 1.0)
        phi, inv = layout([(0, 0), (1, 3)])  # distance 3 on the top row
        weights = InteractionWeights()
        weights.add(0, 1, 1.0)
        proposal = propose_swap((0, 1), phi, inv, topo, weights)
        assert proposal is not None
        moved_from, moved_to = proposal.sites
        # One endpoint steps toward the other.
        old = topo.distance(phi[0], phi[1])
        assert (topo.distance(moved_to, phi[1]) < old
                or topo.distance(moved_to, phi[0]) < old)

    def test_no_proposal_when_adjacent(self):
        # Both operands within range: nothing is strictly closer and the
        # BFS fallback refuses to swap a pair with itself.
        topo = Topology.square(4, 1.0)
        phi, inv = layout([(0, 0), (1, 1)])
        weights = InteractionWeights()
        weights.add(0, 1, 1.0)
        assert propose_swap((0, 1), phi, inv, topo, weights) is None

    def test_prefers_low_disruption(self):
        # Two symmetric moves close the q0..q1 gap on the top row of a
        # 4x4 grid: swap q0 (site 0) right into site 1, or swap q1
        # (site 3) left into the empty site 2.  Site 1 hosts q2, which
        # interacts heavily with q3 right below it, so displacing q2 is
        # penalized and the empty-site move must win.
        topo = Topology.square(4, 1.0)
        phi, inv = layout([(0, 0), (1, 3), (2, 1), (3, 5)])
        weights = InteractionWeights()
        weights.add(0, 1, 1.0)
        weights.add(2, 3, 100.0)
        proposal = propose_swap((0, 1), phi, inv, topo, weights)
        assert proposal is not None
        assert proposal.sites == (3, 2)

    def test_disconnected_returns_none(self):
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        phi, inv = layout([(0, 0), (1, 2)])
        weights = InteractionWeights()
        weights.add(0, 1, 1.0)
        assert propose_swap((0, 1), phi, inv, topo, weights) is None

    def test_fallback_threads_around_holes(self):
        # Straight-line neighbors lost; BFS must route around.
        topo = Topology.square(3, 1.0)
        topo.remove_atom(1)  # direct path 0 -> 2 via 1 is gone
        phi, inv = layout([(0, 0), (1, 2)])
        weights = InteractionWeights()
        weights.add(0, 1, 1.0)
        proposal = propose_swap((0, 1), phi, inv, topo, weights)
        assert proposal is not None
        assert topo.is_active(proposal.site_b)

    def test_three_qubit_gate_span_reduction(self):
        topo = Topology.square(4, 2.0)
        # Triangle too spread: q0@0, q1@3, q2@12.
        phi, inv = layout([(0, 0), (1, 3), (2, 12)])
        weights = InteractionWeights()
        for a, b in ((0, 1), (0, 2), (1, 2)):
            weights.add(a, b, 1.0)
        proposal = propose_swap((0, 1, 2), phi, inv, topo, weights)
        assert proposal is not None
        # The swap must reduce the moved operand's max distance to others.
        moved_from, moved_to = proposal.sites
        moved_q = inv[moved_from]
        others = [phi[q] for q in (0, 1, 2) if q != moved_q]
        assert max(topo.distance(moved_to, s) for s in others) < max(
            topo.distance(moved_from, s) for s in others
        )


class TestReroutePathSwaps:
    def test_already_in_range_empty(self):
        topo = Topology.square(4, 2.0)
        assert reroute_path_swaps(0, 2, topo) == []

    def test_chain_reaches_range(self):
        topo = Topology.square(5, 1.0)
        swaps = reroute_path_swaps(0, 4, topo)
        assert swaps is not None and len(swaps) == 3
        # Walk the chain: end within distance 1 of site 4.
        current = 0
        for a, b in swaps:
            assert a == current
            current = b
        assert topo.distance(current, 4) <= 1.0 + 1e-9

    def test_chain_respects_mid(self):
        topo = Topology.square(5, 2.0)
        swaps = reroute_path_swaps(0, 4, topo)
        current = swaps[-1][1] if swaps else 0
        assert topo.distance(current, 4) <= 2.0 + 1e-9
        # Larger MID needs fewer swaps than MID 1.
        assert len(swaps) < 3

    def test_disconnected_none(self):
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        assert reroute_path_swaps(0, 2, topo) is None

    def test_lost_endpoint_none(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(0)
        assert reroute_path_swaps(0, 2, topo) is None
