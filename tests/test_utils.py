"""Tests for shared utilities: rng, geometry, text plots."""

import math

import numpy as np
import pytest

from repro.utils.geometry import (
    bounding_box,
    chebyshev,
    disks_overlap,
    euclidean,
    max_pairwise_distance,
    point_in_disk,
)
from repro.utils.rng import base_seed_from, ensure_rng, spawn
from repro.utils.textplot import format_series, format_table, percent


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seeds(self):
        a = ensure_rng(42).random()
        b = ensure_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")

    @pytest.mark.parametrize("flag", [True, False, np.True_])
    def test_bool_seed_rejected(self, flag):
        # bool is a subclass of int; without an explicit check True would
        # silently seed as 1.  The error must name the offending value.
        with pytest.raises(TypeError, match=repr(bool(flag))):
            ensure_rng(flag)

    @pytest.mark.parametrize("flag", [True, False, np.False_])
    def test_base_seed_rejects_bool(self, flag):
        with pytest.raises(TypeError, match=repr(bool(flag))):
            base_seed_from(flag)

    def test_base_seed_int_passthrough(self):
        assert base_seed_from(41) == 41

    def test_spawn_independent_streams(self):
        children = spawn(0, 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3
        again = [c.random() for c in spawn(0, 3)]
        assert values == again


class TestGeometry:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_chebyshev(self):
        assert chebyshev((0, 0), (2, 5)) == 5

    def test_max_pairwise(self):
        pts = [(0, 0), (0, 1), (0, 5)]
        assert max_pairwise_distance(pts) == pytest.approx(5.0)
        assert max_pairwise_distance([(1, 1)]) == 0.0

    def test_point_in_disk_open(self):
        assert point_in_disk((0, 1), (0, 0), 1.5)
        assert not point_in_disk((0, 1.5), (0, 0), 1.5)  # boundary excluded

    def test_disks_overlap_open(self):
        assert disks_overlap((0, 0), 1.0, (0, 1.5), 1.0)
        assert not disks_overlap((0, 0), 1.0, (0, 2.0), 1.0)  # tangent

    def test_bounding_box(self):
        assert bounding_box([(1, 2), (3, 0)]) == (1, 0, 3, 2)
        with pytest.raises(ValueError):
            bounding_box([])


class TestTextPlot:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_float_formats(self):
        text = format_table(["x"], [(1.23456789e-7,), (0.0,)])
        assert "e-07" in text
        assert "0" in text

    def test_series(self):
        text = format_series("name", [1, 2], [3.0, 4.0])
        assert text.startswith("name:")
        assert "(1, 3)" in text

    def test_percent(self):
        assert percent(0.423) == "42.3%"
