"""Tests for the trapped-ion comparator and the geometry extension."""

import pytest

from repro.analysis import (
    compiled_metrics,
    neutral_atom_arch,
    trapped_ion_arch,
)
from repro.experiments import ext_geometry, ext_trapped_ion
from repro.hardware import NoiseModel
from repro.hardware.restriction import RestrictionModel, global_restriction


class TestGlobalRestriction:
    def test_entangling_gates_fully_serialize(self):
        model = RestrictionModel(global_restriction)
        # Two far-apart 2q gates still conflict under the phonon-bus model.
        assert model.conflict([(0, 0), (0, 1)], [(9, 9), (9, 8)])

    def test_single_qubit_gates_can_pair(self):
        model = RestrictionModel(global_restriction)
        assert not model.conflict([(0, 0)], [(9, 9)])

    def test_single_qubit_blocked_during_entangling(self):
        model = RestrictionModel(global_restriction)
        assert model.conflict([(0, 0), (0, 1)], [(9, 9)])

    def test_available_by_name(self):
        assert not RestrictionModel("global").disabled


class TestTrappedIonNoise:
    def test_named_model(self):
        ti = NoiseModel.trapped_ion()
        assert ti.fidelity(2) == pytest.approx(0.975)
        # Slow gates: two-qubit MS gate is ~3 orders slower than Rydberg.
        na = NoiseModel.neutral_atom()
        assert ti.duration_of(2) > 100 * na.duration_of(2)

    def test_error_rescaling(self):
        ti = NoiseModel.trapped_ion(two_qubit_error=1e-3)
        assert ti.two_qubit_error == pytest.approx(1e-3)


class TestTrappedIonArchitecture:
    def test_all_to_all_no_swaps(self):
        metrics = compiled_metrics("bv", 20, trapped_ion_arch())
        assert metrics.swap_count == 0

    def test_serialization_on_parallel_benchmark(self):
        ti = compiled_metrics("cnu", 20, trapped_ion_arch())
        na = compiled_metrics(
            "cnu", 20, neutral_atom_arch(mid=3.0, native_max_arity=3)
        )
        assert ti.depth >= na.depth

    def test_three_way_comparison_shapes(self):
        result = ext_trapped_ion.run(benchmarks=("bv", "cnu"),
                                     program_size=20)
        for benchmark in ("bv", "cnu"):
            # TI inserts no SWAPs; SC inserts some.
            assert result.metrics(benchmark, "ti").swap_count == 0
            assert result.metrics(benchmark, "sc").swap_count > 0
            # TI's slow serialized gates cost orders of magnitude in time.
            assert (result.duration(benchmark, "ti")
                    > 50 * result.duration(benchmark, "na"))
        assert "Trapped-Ion" in result.format()


class TestGeometryExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_geometry.run(benchmarks=("bv", "qaoa"), grid_side=5,
                                mids=(2.0,))

    def test_square_beats_line_on_swaps(self, result):
        for benchmark in ("bv", "qaoa"):
            line = result.select(benchmark, "line", 2.0)
            square = result.select(benchmark, "square", 2.0)
            assert square.swaps <= line.swaps
            assert square.gates <= line.gates

    def test_swap_advantage_positive_for_bv(self, result):
        assert result.swap_advantage("bv", 2.0) > 0.0

    def test_format(self, result):
        assert "1D Chain" in result.format()
