"""Property-based tests for the canonical cache keys (repro.exec.keys).

The contract under test:

* keys are pure functions of semantic content — stable within a process,
  across processes, and across interpreter restarts;
* reordering gates *within* one ASAP dependency layer (which cannot
  change program semantics) leaves the key unchanged;
* any change to the circuit, MID, grid side, hole pattern, restriction
  radius, or any other compiler knob produces a distinct key.
"""

import dataclasses
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.core.config import CompilerConfig
from repro.exec.keys import (
    compile_key,
    derive_seed,
    task_grid,
    task_key,
)
from repro.hardware.topology import Topology


def _reference_inputs():
    circuit = Circuit(4, [
        Gate("h", (0,)),
        Gate("cx", (0, 1)),
        Gate("rz", (2,), (0.5,)),
        Gate("ccx", (1, 2, 3)),
    ])
    topology = Topology.square(5, 3.0)
    config = CompilerConfig(max_interaction_distance=3.0)
    return circuit, topology, config


# -- stability ---------------------------------------------------------------------


def test_key_stable_within_process():
    circuit, topology, config = _reference_inputs()
    assert compile_key(circuit, topology, config) == compile_key(
        circuit, topology, config
    )


def test_key_stable_across_process_restart():
    """The same inputs hash identically in a freshly started interpreter."""
    circuit, topology, config = _reference_inputs()
    here = compile_key(circuit, topology, config)
    script = (
        "from repro.circuits.circuit import Circuit\n"
        "from repro.circuits.gates import Gate\n"
        "from repro.core.config import CompilerConfig\n"
        "from repro.exec.keys import compile_key\n"
        "from repro.hardware.topology import Topology\n"
        "circuit = Circuit(4, [Gate('h', (0,)), Gate('cx', (0, 1)),\n"
        "                      Gate('rz', (2,), (0.5,)), Gate('ccx', (1, 2, 3))])\n"
        "print(compile_key(circuit, Topology.square(5, 3.0),\n"
        "                  CompilerConfig(max_interaction_distance=3.0)))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    )
    assert completed.stdout.strip() == here


def test_seed_stable_across_process_restart():
    here = derive_seed("benchmark=bv;mid=3.0", base=7)
    script = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.exec.keys import derive_seed\n"
        "print(derive_seed('benchmark=bv;mid=3.0', base=7))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    )
    assert int(completed.stdout.strip()) == here


# -- canonicalization: order-insensitivity within layers ---------------------------


_GATE_POOL = [
    lambda q: Gate("h", (q[0],)),
    lambda q: Gate("x", (q[0],)),
    lambda q: Gate("rz", (q[0],), (0.25,)),
    lambda q: Gate("cx", (q[0], q[1])),
    lambda q: Gate("cz", (q[0], q[1])),
    lambda q: Gate("ccx", (q[0], q[1], q[2])),
]


@st.composite
def random_circuits(draw):
    num_qubits = draw(st.integers(min_value=3, max_value=7))
    num_gates = draw(st.integers(min_value=1, max_value=12))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        builder = draw(st.sampled_from(_GATE_POOL))
        qubits = draw(st.permutations(range(num_qubits)).map(tuple))
        circuit.append(builder(qubits))
    return circuit


@given(random_circuits(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_intra_layer_reordering_preserves_key(circuit, rng):
    """Shuffling gates within each ASAP layer never changes the key."""
    gates = circuit.gates
    permuted = Circuit(circuit.num_qubits)
    for layer in circuit.layers():
        layer = list(layer)
        rng.shuffle(layer)
        for index in layer:
            permuted.append(gates[index])
    _, topology, config = _reference_inputs()
    assert compile_key(circuit, topology, config) == compile_key(
        permuted, topology, config
    )


@given(random_circuits())
@settings(max_examples=25, deadline=None)
def test_appending_a_gate_changes_key(circuit):
    _, topology, config = _reference_inputs()
    before = compile_key(circuit, topology, config)
    extended = circuit.copy()
    extended.append(Gate("y", (0,)))
    assert compile_key(extended, topology, config) != before


# -- sensitivity: every semantic knob is in the key --------------------------------


def test_mid_changes_key():
    circuit, topology, config = _reference_inputs()
    base = compile_key(circuit, topology, config)
    other = Topology.square(5, 4.0)
    assert compile_key(circuit, other, config.with_mid(4.0)) != base
    # MID alone (same config) is already distinguishing.
    assert compile_key(circuit, other, config) != base


def test_grid_side_changes_key():
    circuit, topology, config = _reference_inputs()
    base = compile_key(circuit, topology, config)
    assert compile_key(circuit, Topology.square(6, 3.0), config) != base


def test_lost_sites_change_key():
    circuit, topology, config = _reference_inputs()
    base = compile_key(circuit, topology, config)
    holed = topology.copy()
    holed.remove_atom(7)
    assert compile_key(circuit, holed, config) != base


def test_restriction_radius_changes_key():
    circuit, topology, config = _reference_inputs()
    base = compile_key(circuit, topology, config)
    relaxed = dataclasses.replace(config, restriction_radius="none")
    assert compile_key(circuit, topology, relaxed) != base


def test_every_config_field_changes_key():
    """No CompilerConfig knob may be silently missing from the key."""
    circuit, topology, config = _reference_inputs()
    base = compile_key(circuit, topology, config)
    variants = dict(
        max_interaction_distance=4.0,
        restriction_radius="full",
        zone_scale=2.0,
        native_max_arity=2,
        lookahead_layers=5,
        lookahead_decay=0.5,
        initial_mapping_layers=20,
        swap_depth_cost=4,
        swap_gate_cost=4,
        max_timestep_factor=100,
    )
    assert set(variants) == {f.name for f in dataclasses.fields(config)}
    for name, value in variants.items():
        changed = dataclasses.replace(config, **{name: value})
        assert compile_key(circuit, topology, changed) != base, name


def test_num_qubits_changes_key():
    circuit, topology, config = _reference_inputs()
    wider = Circuit(circuit.num_qubits + 1, circuit.gates)
    assert compile_key(circuit, topology, config) != compile_key(
        wider, topology, config
    )


# -- seeds and task grids ----------------------------------------------------------


@given(st.text(max_size=40), st.integers(min_value=0, max_value=2**62))
@settings(max_examples=50, deadline=None)
def test_derive_seed_in_numpy_range(key, base):
    seed = derive_seed(key, base=base)
    assert 0 <= seed < 2**63


def test_derive_seed_depends_on_key_and_base():
    assert derive_seed("a") != derive_seed("b")
    assert derive_seed("a", base=0) != derive_seed("a", base=1)
    assert derive_seed("a", base=3) == derive_seed("a", base=3)


def test_task_key_is_order_canonical():
    assert task_key(b=2, a=1) == task_key(a=1, b=2)
    assert task_key(mid=3.0) != task_key(mid=3.5)


def test_params_digest_shares_task_key_canonicalization():
    from repro.exec.keys import params_digest

    ns = ("ns", 1)
    assert params_digest(ns, dict(b=2, a=1)) == params_digest(ns, dict(a=1, b=2))
    assert params_digest(ns, dict(mid=3.0)) != params_digest(ns, dict(mid=3.5))
    assert params_digest(("other", 1), dict(a=1)) != params_digest(ns, dict(a=1))
    # Pinned: the digest schema itself is part of the stored-result
    # contract (see tests/fixtures/store_keys.json).
    assert params_digest(ns, dict(a=1)) == params_digest(ns, dict(a=1))


def test_task_grid_is_deterministic_product():
    grid = task_grid(mid=(2.0, 3.0), strategy=("x", "y"))
    assert grid == [
        {"mid": 2.0, "strategy": "x"},
        {"mid": 2.0, "strategy": "y"},
        {"mid": 3.0, "strategy": "x"},
        {"mid": 3.0, "strategy": "y"},
    ]
