"""Behavioural tests for the six §VI atom-loss coping strategies."""

import pytest

from repro.core import CompilerConfig
from repro.hardware import NoiseModel, Topology
from repro.loss import (
    AlwaysRecompile,
    AlwaysReload,
    CompileSmall,
    CompileSmallReroute,
    MinorReroute,
    STRATEGY_ORDER,
    VirtualRemap,
    make_strategy,
    max_swap_budget,
)
from repro.workloads import build_circuit

NOISE = NoiseModel.neutral_atom()


def started(strategy, mid=3.0, side=10, size=20):
    circuit = build_circuit("cnu", size)
    topology = Topology.square(side, mid)
    config = CompilerConfig(max_interaction_distance=mid)
    strategy.begin(circuit, topology, config)
    return strategy, topology


class TestFactoryAndBudget:
    @pytest.mark.parametrize("name", STRATEGY_ORDER + ["always reload"])
    def test_factory_builds_all(self, name):
        assert make_strategy(name).name == name

    def test_factory_unknown(self):
        with pytest.raises(KeyError):
            make_strategy("nope")

    def test_swap_budget_paper_number(self):
        # 96.5% two-qubit fidelity, 50% drop budget -> six SWAPs (§VI).
        assert max_swap_budget(NOISE) == 6

    def test_swap_budget_perfect_gates(self):
        perfect = NoiseModel("p", {1: 1.0, 2: 1.0}, 1.0, 1.0, {2: 1e-6})
        assert max_swap_budget(perfect) > 10**6

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, 2.0])
    def test_swap_budget_rejects_bad_drop_factor(self, bad):
        with pytest.raises(ValueError, match="drop_factor"):
            max_swap_budget(NOISE, drop_factor=bad)

    def test_swap_budget_drop_factor_one_allows_nothing(self):
        # log(1) == 0: no success erosion is tolerated, so zero SWAPs —
        # but the boundary value itself is legal.
        assert max_swap_budget(NOISE, drop_factor=1.0) == 0


class TestAlwaysReload:
    def test_spare_loss_ignored(self):
        strategy, topo = started(AlwaysReload())
        spare = next(s for s in topo.active_sites()
                     if s not in strategy.current_used_sites())
        topo.remove_atom(spare)
        outcome = strategy.on_loss(spare)
        assert outcome.coped and not outcome.interfering

    def test_interfering_loss_reloads(self):
        strategy, topo = started(AlwaysReload())
        victim = next(iter(strategy.current_used_sites()))
        topo.remove_atom(victim)
        outcome = strategy.on_loss(victim)
        assert not outcome.coped


class TestVirtualRemap:
    def test_remap_keeps_program_running(self):
        strategy, topo = started(VirtualRemap(), mid=4.0)
        victim = next(iter(strategy.current_used_sites()))
        topo.remove_atom(victim)
        outcome = strategy.on_loss(victim)
        # At MID 4 a single shift rarely overstretches; accept either coped
        # or reload but require consistency with the outcome contract.
        if outcome.coped:
            assert outcome.remap_updates >= 1
            assert victim not in strategy.current_used_sites()
        else:
            assert outcome.interfering

    def test_no_swaps_ever_added(self):
        strategy, topo = started(VirtualRemap(), mid=4.0)
        for _ in range(5):
            victim = next(iter(strategy.current_used_sites()))
            topo.remove_atom(victim)
            if not strategy.on_loss(victim).coped:
                break
        assert strategy.added_swaps == 0

    def test_after_reload_resets(self):
        strategy, topo = started(VirtualRemap(), mid=4.0)
        victim = next(iter(strategy.current_used_sites()))
        topo.remove_atom(victim)
        strategy.on_loss(victim)
        topo.reload()
        strategy.after_reload()
        assert strategy.current_used_sites() == strategy.program.used_sites()

    def test_measured_sites_follow_map(self):
        strategy, topo = started(VirtualRemap(), mid=4.0)
        baseline = strategy.current_measured_sites()
        victim = next(iter(baseline))
        topo.remove_atom(victim)
        outcome = strategy.on_loss(victim)
        if outcome.coped:
            assert victim not in strategy.current_measured_sites()


class TestMinorReroute:
    def test_fixup_adds_swaps_and_erodes_success(self):
        strategy, topo = started(MinorReroute(noise=NOISE), mid=3.0)
        base_success = strategy.shot_success_rate(NOISE)
        # Hammer the program with losses until a fixup happens or it gives up.
        added = False
        for _ in range(12):
            victim = next(iter(strategy.current_used_sites()))
            topo.remove_atom(victim)
            outcome = strategy.on_loss(victim)
            if not outcome.coped:
                break
            if outcome.swaps_added:
                added = True
                break
        if added:
            assert strategy.added_swaps > 0
            assert strategy.shot_success_rate(NOISE) < base_success

    def test_budget_forces_reload(self):
        # A zero-budget reroute behaves like virtual remapping w.r.t.
        # overstretched gates.
        strategy = MinorReroute(noise=NOISE, success_drop_factor=0.999999)
        assert strategy.swap_budget == 0

    def test_outcome_reports_fixup_search(self):
        strategy, topo = started(MinorReroute(noise=NOISE), mid=3.0)
        for _ in range(12):
            victim = next(iter(strategy.current_used_sites()))
            topo.remove_atom(victim)
            outcome = strategy.on_loss(victim)
            if not outcome.coped:
                break
            if outcome.swaps_added:
                assert outcome.ran_fixup_search
                break


class TestCompileSmall:
    def test_compiles_below_true_mid(self):
        strategy, _ = started(CompileSmall(), mid=4.0)
        assert strategy.program.config.max_interaction_distance == 3.0

    def test_rejected_at_mid_2(self):
        strategy = CompileSmall()
        with pytest.raises(ValueError):
            started(strategy, mid=2.0)

    def test_tolerates_stretch_beyond_compiled_mid(self):
        # After compiling at 3, interactions may stretch to 4 before reload.
        strategy, _ = started(CompileSmall(), mid=4.0)
        assert strategy._distance_limit() == pytest.approx(4.0)

    def test_combined_variant_compiles_small_too(self):
        strategy, _ = started(CompileSmallReroute(noise=NOISE), mid=4.0)
        assert strategy.program.config.max_interaction_distance == 3.0
        assert strategy.swap_budget == 6


class TestRecompile:
    def test_recompiles_on_interfering_loss(self):
        strategy, topo = started(AlwaysRecompile(), mid=3.0)
        before = strategy.program
        victim = next(iter(strategy.current_used_sites()))
        topo.remove_atom(victim)
        outcome = strategy.on_loss(victim)
        assert outcome.coped
        assert outcome.recompile_seconds > 0
        assert strategy.program is not before
        # The new program avoids the lost site.
        assert victim not in strategy.program.used_sites()

    def test_reload_restores_pristine_program(self):
        strategy, topo = started(AlwaysRecompile(), mid=3.0)
        pristine = strategy.program
        victim = next(iter(strategy.current_used_sites()))
        topo.remove_atom(victim)
        strategy.on_loss(victim)
        topo.reload()
        strategy.after_reload()
        assert strategy.program is pristine

    def test_gives_up_when_atoms_exhausted(self):
        # 3x3 device, 8-qubit program: one spare; two losses exhaust it.
        circuit = build_circuit("cnu", 8)
        topo = Topology.square(3, 2.0)
        strategy = AlwaysRecompile()
        strategy.begin(circuit, topo, CompilerConfig(max_interaction_distance=2.0))
        outcomes = []
        for site in (0, 1):
            topo.remove_atom(site)
            outcomes.append(strategy.on_loss(site))
        assert not outcomes[-1].coped


class TestSuccessAccounting:
    def test_shot_success_matches_program_when_clean(self):
        strategy, _ = started(VirtualRemap(), mid=3.0)
        assert strategy.shot_success_rate(NOISE) == pytest.approx(
            strategy.program.success_rate(NOISE)
        )

    def test_not_started_raises(self):
        with pytest.raises(RuntimeError):
            VirtualRemap().shot_success_rate(NOISE)
        with pytest.raises(RuntimeError):
            VirtualRemap().current_used_sites()
