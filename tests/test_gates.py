"""Unit tests for the gate IR."""

import pytest

from repro.circuits import gates
from repro.circuits.gates import Gate


class TestGateConstruction:
    def test_basic_fields(self):
        g = Gate("CX", (0, 1))
        assert g.name == "cx"  # normalized to lower case
        assert g.qubits == (0, 1)
        assert g.params == ()

    def test_params_coerced_to_float(self):
        g = Gate("rz", (0,), (1,))
        assert g.params == (1.0,)
        assert isinstance(g.params[0], float)

    def test_duplicate_operands_rejected(self):
        with pytest.raises(ValueError):
            Gate("cx", (3, 3))

    def test_empty_operands_rejected(self):
        with pytest.raises(ValueError):
            Gate("x", ())

    def test_frozen(self):
        g = gates.x(0)
        with pytest.raises(Exception):
            g.name = "y"

    def test_equality_and_hash(self):
        assert gates.cx(0, 1) == gates.cx(0, 1)
        assert gates.cx(0, 1) != gates.cx(1, 0)
        assert hash(gates.h(2)) == hash(gates.h(2))


class TestGateProperties:
    def test_arity(self):
        assert gates.x(0).arity == 1
        assert gates.cx(0, 1).arity == 2
        assert gates.ccx(0, 1, 2).arity == 3

    def test_is_multiqubit(self):
        assert not gates.h(0).is_multiqubit
        assert gates.cz(0, 1).is_multiqubit
        assert gates.ccx(0, 1, 2).is_multiqubit

    def test_is_measurement(self):
        assert gates.measure(0).is_measurement
        assert not gates.x(0).is_measurement

    def test_is_swap(self):
        assert gates.swap(0, 1).is_swap
        assert not gates.cx(0, 1).is_swap


class TestGateTransforms:
    def test_on_moves_operands(self):
        g = gates.ccx(0, 1, 2).on(5, 6, 7)
        assert g.qubits == (5, 6, 7)
        assert g.name == "ccx"

    def test_on_wrong_arity(self):
        with pytest.raises(ValueError):
            gates.cx(0, 1).on(3)

    def test_remap_through_dict(self):
        g = gates.cx(0, 1).remap({0: 9, 1: 4})
        assert g.qubits == (9, 4)

    def test_remap_preserves_params(self):
        g = gates.rz(0.5, 0).remap({0: 3})
        assert g.params == (0.5,)


class TestConstructors:
    def test_mcx_degenerate_cases(self):
        assert gates.mcx([], 0).name == "x"
        assert gates.mcx([1], 0).name == "cx"
        assert gates.mcx([1, 2], 0).name == "ccx"

    def test_mcx_large(self):
        g = gates.mcx([0, 1, 2], 3)
        assert g.name == "c3x"
        assert g.qubits == (0, 1, 2, 3)

    def test_rotation_param(self):
        assert gates.rx(0.3, 1).params == (0.3,)
        assert gates.cphase(0.7, 0, 1).params == (0.7,)

    def test_str_rendering(self):
        assert str(gates.cx(0, 1)) == "cx 0, 1"
        assert "rz(0.5)" in str(gates.rz(0.5, 2))
