"""Unit tests for the circuit DAG and execution frontier."""

import pytest

from repro.circuits import Circuit, CircuitDag, Frontier, interaction_pairs
from repro.circuits.gates import ccx, cx, h, x


def chain_circuit():
    # 0: h(0) -> 1: cx(0,1) -> 2: cx(1,2) ; 3: x(3) independent
    return Circuit(4, [h(0), cx(0, 1), cx(1, 2), x(3)])


class TestDagStructure:
    def test_predecessors(self):
        dag = CircuitDag(chain_circuit())
        assert dag.predecessors[0] == set()
        assert dag.predecessors[1] == {0}
        assert dag.predecessors[2] == {1}
        assert dag.predecessors[3] == set()

    def test_successors(self):
        dag = CircuitDag(chain_circuit())
        assert dag.successors[0] == {1}
        assert dag.successors[1] == {2}
        assert dag.successors[2] == set()

    def test_roots(self):
        dag = CircuitDag(chain_circuit())
        assert dag.roots() == [0, 3]

    def test_multi_predecessor(self):
        c = Circuit(3, [h(0), h(1), cx(0, 1)])
        dag = CircuitDag(c)
        assert dag.predecessors[2] == {0, 1}

    def test_only_nearest_predecessor_per_qubit(self):
        c = Circuit(2, [x(0), x(0), cx(0, 1)])
        dag = CircuitDag(c)
        assert dag.predecessors[2] == {1}

    def test_gate_layer(self):
        dag = CircuitDag(chain_circuit())
        assert dag.gate_layer(0) == 0
        assert dag.gate_layer(1) == 1
        assert dag.gate_layer(2) == 2
        assert dag.gate_layer(3) == 0


class TestFrontier:
    def test_initial_ready(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        assert frontier.ready == {0, 3}

    def test_complete_releases_successor(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        frontier.complete(0)
        assert 1 in frontier.ready

    def test_complete_not_ready_raises(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        with pytest.raises(ValueError):
            frontier.complete(2)

    def test_double_complete_raises(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        frontier.complete(0)
        with pytest.raises(ValueError):
            frontier.complete(0)

    def test_all_done(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        for idx in (0, 3, 1, 2):
            frontier.complete(idx)
        assert frontier.all_done()

    def test_remaining_layers_initial(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        layers = frontier.remaining_layers(10)
        assert sorted(layers[0]) == [0, 3]
        assert layers[1] == [1]
        assert layers[2] == [2]

    def test_remaining_layers_advance(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        frontier.complete(0)
        frontier.complete(3)
        layers = frontier.remaining_layers(10)
        assert layers[0] == [1]
        assert layers[1] == [2]

    def test_remaining_layers_truncation(self):
        frontier = Frontier(CircuitDag(chain_circuit()))
        assert len(frontier.remaining_layers(1)) == 1


class TestInteractionPairs:
    def test_two_qubit(self):
        assert interaction_pairs(cx(3, 5)) == [(3, 5)]

    def test_three_qubit_all_pairs(self):
        pairs = interaction_pairs(ccx(0, 1, 2))
        assert set(pairs) == {(0, 1), (0, 2), (1, 2)}

    def test_single_qubit_empty(self):
        assert interaction_pairs(x(0)) == []
