"""Unit tests for the greedy initial placement (§III-A)."""

import pytest

from repro.circuits import Circuit, CircuitDag
from repro.circuits.gates import cx, h
from repro.core.mapping import MappingError, initial_mapping
from repro.core.weights import InteractionWeights, initial_weights
from repro.hardware import Topology


def mapping_for(circuit, topology):
    weights = initial_weights(CircuitDag(circuit))
    return initial_mapping(circuit.num_qubits, topology, weights)


class TestBasics:
    def test_injective_and_active(self):
        c = Circuit(4, [cx(0, 1), cx(2, 3), cx(1, 2)])
        topo = Topology.square(3, 1.0)
        mapping = mapping_for(c, topo)
        assert len(mapping) == 4
        assert len(set(mapping.values())) == 4
        assert all(topo.is_active(s) for s in mapping.values())

    def test_too_many_qubits(self):
        c = Circuit(10, [cx(0, 1)])
        topo = Topology.square(3, 1.0)
        with pytest.raises(MappingError):
            mapping_for(c, topo)

    def test_avoids_lost_sites(self):
        c = Circuit(6, [cx(i, i + 1) for i in range(5)])
        topo = Topology.square(3, 1.0)
        topo.remove_atom(4)
        mapping = mapping_for(c, topo)
        assert 4 not in mapping.values()

    def test_exactly_fills_device(self):
        c = Circuit(9, [cx(i, (i + 1) % 9) for i in range(9)])
        topo = Topology.square(3, 2.0)
        mapping = mapping_for(c, topo)
        assert sorted(mapping.values()) == list(range(9))


class TestPlacementQuality:
    def test_heaviest_pair_adjacent_at_center(self):
        # Qubits 0,1 interact 5x; 2,3 once.  0,1 should sit adjacent.
        gates = [cx(0, 1) for _ in range(5)] + [cx(2, 3)]
        c = Circuit(4, gates)
        topo = Topology.square(5, 1.0)
        mapping = mapping_for(c, topo)
        assert topo.distance(mapping[0], mapping[1]) == pytest.approx(1.0)
        # And near the device center (site 12 in a 5x5).
        center = topo.grid.center_site()
        assert topo.distance(mapping[0], center) <= 2.0

    def test_partners_placed_close(self):
        # Star: qubit 0 talks to everyone; it should be more central
        # (smaller mean distance to others) than the leaves are.
        c = Circuit(5, [cx(0, i) for i in range(1, 5)] * 2)
        topo = Topology.square(5, 1.0)
        mapping = mapping_for(c, topo)
        def mean_dist(q):
            others = [v for k, v in mapping.items() if k != q]
            return sum(topo.distance(mapping[q], s) for s in others) / len(others)
        assert mean_dist(0) <= min(mean_dist(q) for q in range(1, 5)) + 1e-9

    def test_isolated_qubits_still_placed(self):
        c = Circuit(4, [cx(0, 1), h(2), h(3)])  # 2, 3 never interact
        topo = Topology.square(3, 1.0)
        mapping = mapping_for(c, topo)
        assert set(mapping) == {0, 1, 2, 3}

    def test_no_interactions_at_all(self):
        c = Circuit(3, [h(0), h(1), h(2)])
        topo = Topology.square(3, 1.0)
        mapping = mapping_for(c, topo)
        assert len(set(mapping.values())) == 3

    def test_deterministic(self):
        c = Circuit(5, [cx(0, 1), cx(1, 2), cx(3, 4)])
        topo = Topology.square(4, 2.0)
        assert mapping_for(c, topo) == mapping_for(c, topo)


class TestExplicitWeights:
    def test_manual_weights_drive_placement(self):
        weights = InteractionWeights()
        weights.add(0, 1, 10.0)
        topo = Topology.square(4, 1.0)
        mapping = initial_mapping(2, topo, weights)
        assert topo.distance(mapping[0], mapping[1]) == pytest.approx(1.0)
