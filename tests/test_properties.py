"""Property-based tests (hypothesis) for core invariants.

Random circuits compiled to random device configurations must always
yield schedules that (a) respect the interaction distance, (b) keep zones
disjoint within a timestep, (c) preserve semantics up to layout, and the
supporting data structures (zones, virtual maps, weights) must hold their
own invariants under arbitrary inputs.
"""

import math

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, CircuitDag
from repro.circuits.gates import Gate, ccx, cx, h, rz, x
from repro.core import CompilerConfig, check_compiled, compile_circuit
from repro.core.weights import initial_weights
from repro.hardware import Grid, Topology
from repro.hardware.restriction import RestrictionModel, no_restriction
from repro.loss.virtual_map import RemapFailed, VirtualMap
from repro.utils.geometry import max_pairwise_distance

SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- random circuit generation --------------------------------------------------------

@st.composite
def small_circuits(draw, max_qubits=6, max_gates=12):
    num_qubits = draw(st.integers(3, max_qubits))
    num_gates = draw(st.integers(1, max_gates))
    gates = []
    for _ in range(num_gates):
        kind = draw(st.integers(0, 3))
        qubits = draw(
            st.lists(
                st.integers(0, num_qubits - 1),
                min_size=3, max_size=3, unique=True,
            )
        )
        if kind == 0:
            gates.append(h(qubits[0]))
        elif kind == 1:
            gates.append(rz(draw(st.floats(0.1, 3.0)), qubits[0]))
        elif kind == 2:
            gates.append(cx(qubits[0], qubits[1]))
        else:
            gates.append(ccx(*qubits))
    return Circuit(num_qubits, gates)


@given(circuit=small_circuits(), mid=st.sampled_from([1.0, 2.0, 3.0]))
@settings(max_examples=40, **SETTINGS)
def test_compiled_schedule_respects_distance_and_zones(circuit, mid):
    topo = Topology.square(3, mid)
    config = CompilerConfig(max_interaction_distance=mid)
    program = compile_circuit(circuit, topo, config)
    grid = topo.grid
    model = program.config.restriction_model()
    for timestep in program.schedule:
        taken = set()
        for op in timestep:
            # (a) all operand pairs within range
            assert max_pairwise_distance(
                [grid.position(s) for s in op.sites]
            ) <= mid + 1e-9
            # (b) no shared sites within a timestep
            assert not (set(op.sites) & taken)
            taken.update(op.sites)
        # (c) zones pairwise disjoint
        for i in range(len(timestep)):
            for j in range(i + 1, len(timestep)):
                a = [grid.position(s) for s in timestep[i].sites]
                b = [grid.position(s) for s in timestep[j].sites]
                assert not model.conflict(a, b)


@given(circuit=small_circuits(max_qubits=5, max_gates=8),
       mid=st.sampled_from([1.0, 2.0]))
@settings(max_examples=20, **SETTINGS)
def test_compiled_program_semantically_equivalent(circuit, mid):
    topo = Topology.square(3, mid)
    config = CompilerConfig(max_interaction_distance=mid)
    program = compile_circuit(circuit, topo, config)
    assert check_compiled(program, trials=3)


@given(circuit=small_circuits())
@settings(max_examples=30, **SETTINGS)
def test_layers_partition_gates(circuit):
    layers = circuit.layers()
    flattened = sorted(i for layer in layers for i in layer)
    assert flattened == list(range(len(circuit)))
    assert len(layers) == circuit.depth()


@given(circuit=small_circuits())
@settings(max_examples=30, **SETTINGS)
def test_weights_symmetric_and_positive(circuit):
    weights = initial_weights(CircuitDag(circuit))
    for u, v in weights.pairs():
        assert weights.weight(u, v) == weights.weight(v, u) > 0


# -- zone geometry ---------------------------------------------------------------------

coords = st.tuples(st.integers(0, 8), st.integers(0, 8))


@given(a=st.lists(coords, min_size=1, max_size=3, unique=True),
       b=st.lists(coords, min_size=1, max_size=3, unique=True))
@settings(max_examples=80, **SETTINGS)
def test_zone_conflict_symmetric(a, b):
    model = RestrictionModel()
    assert model.conflict(a, b) == model.conflict(b, a)


@given(a=st.lists(coords, min_size=2, max_size=3, unique=True))
@settings(max_examples=50, **SETTINGS)
def test_zone_conflicts_with_itself(a):
    model = RestrictionModel()
    assert model.conflict(a, a)


@given(a=st.lists(coords, min_size=1, max_size=3, unique=True),
       b=st.lists(coords, min_size=1, max_size=3, unique=True))
@settings(max_examples=50, **SETTINGS)
def test_disabled_zones_only_share_conflicts(a, b):
    model = RestrictionModel(no_restriction)
    expected = bool(set(a) & set(b))
    assert model.conflict(a, b) == expected


@given(a=st.lists(coords, min_size=2, max_size=3, unique=True),
       b=st.lists(coords, min_size=2, max_size=3, unique=True),
       scale=st.floats(1.0, 3.0))
@settings(max_examples=50, **SETTINGS)
def test_zone_scale_monotone(a, b, scale):
    # Anything conflicting at scale 1 still conflicts at a larger scale.
    base = RestrictionModel(zone_scale=1.0)
    bigger = RestrictionModel(zone_scale=scale)
    if base.conflict(a, b):
        assert bigger.conflict(a, b)


# -- virtual map ------------------------------------------------------------------------

@given(seed=st.integers(0, 1000), num_roles=st.integers(1, 10))
@settings(max_examples=40, **SETTINGS)
def test_virtual_map_bijective_under_random_losses(seed, num_roles):
    import numpy as np

    rng = np.random.default_rng(seed)
    topo = Topology.square(5, 2.0)
    roles = sorted(
        int(r) for r in rng.choice(25, size=num_roles, replace=False)
    )
    vmap = VirtualMap(topo, roles)
    for _ in range(8):
        active = topo.active_sites()
        if not active:
            break
        site = int(active[int(rng.integers(len(active)))])
        topo.remove_atom(site)
        try:
            vmap.shift_for_loss(site)
        except RemapFailed:
            break
        sites_now = list(vmap.role_to_site.values())
        assert len(sites_now) == len(set(sites_now)) == len(roles)
        assert all(topo.is_active(s) for s in sites_now)
        assert set(vmap.site_to_role) == set(sites_now)


# -- noise model -------------------------------------------------------------------------

@given(error=st.floats(1e-6, 0.2),
       n2=st.integers(0, 200), n1=st.integers(0, 200))
@settings(max_examples=60, **SETTINGS)
def test_success_rate_in_unit_interval(error, n2, n1):
    from repro.hardware import NoiseModel

    noise = NoiseModel.neutral_atom(two_qubit_error=error)
    p = noise.program_success({1: n1, 2: n2}, 1e-4)
    assert 0.0 <= p <= 1.0


@given(n2=st.integers(1, 100))
@settings(max_examples=30, **SETTINGS)
def test_more_gates_never_help(n2):
    from repro.hardware import NoiseModel

    noise = NoiseModel.neutral_atom()
    assert noise.gate_success({2: n2 + 1}) < noise.gate_success({2: n2})
