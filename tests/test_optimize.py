"""Tests for the peephole circuit optimizer."""

import math

import pytest

from repro.circuits import Circuit, optimize_circuit
from repro.circuits.gates import ccx, cx, h, rz, rzz, s, swap, x
from repro.circuits.optimize import (
    cancel_self_inverses,
    merge_rotations,
    optimization_report,
)
from repro.sim import circuits_equivalent


class TestSelfInverseCancellation:
    def test_adjacent_pair_cancels(self):
        c = Circuit(1, [x(0), x(0)])
        assert len(cancel_self_inverses(c)) == 0

    def test_cx_pair_cancels(self):
        c = Circuit(2, [cx(0, 1), cx(0, 1)])
        assert len(cancel_self_inverses(c)) == 0

    def test_different_operands_survive(self):
        c = Circuit(2, [cx(0, 1), cx(1, 0)])
        assert len(cancel_self_inverses(c)) == 2

    def test_blocked_by_intervening_gate(self):
        c = Circuit(2, [cx(0, 1), h(0), cx(0, 1)])
        assert len(cancel_self_inverses(c)) == 3

    def test_skips_over_disjoint_gates(self):
        c = Circuit(3, [cx(0, 1), x(2), cx(0, 1)])
        out = cancel_self_inverses(c)
        assert len(out) == 1
        assert out[0].name == "x"

    def test_cascading_cancellation(self):
        # h x x h -> h h -> empty.
        c = Circuit(1, [h(0), x(0), x(0), h(0)])
        assert len(optimize_circuit(c)) == 0

    def test_non_self_inverse_untouched(self):
        c = Circuit(1, [s(0), s(0)])
        assert len(cancel_self_inverses(c)) == 2

    def test_toffoli_pair_cancels(self):
        c = Circuit(3, [ccx(0, 1, 2), ccx(0, 1, 2)])
        assert len(cancel_self_inverses(c)) == 0

    def test_swap_pair_cancels(self):
        c = Circuit(2, [swap(0, 1), swap(0, 1)])
        assert len(cancel_self_inverses(c)) == 0


class TestRotationMerging:
    def test_rz_angles_add(self):
        c = Circuit(1, [rz(0.3, 0), rz(0.4, 0)])
        out = merge_rotations(c)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_full_period_cancels(self):
        c = Circuit(1, [rz(2 * math.pi, 0), rz(2 * math.pi, 0)])
        assert len(merge_rotations(c)) == 0

    def test_opposite_angles_cancel(self):
        c = Circuit(1, [rz(0.5, 0), rz(-0.5, 0)])
        assert len(merge_rotations(c)) == 0

    def test_rzz_merges(self):
        c = Circuit(2, [rzz(0.2, 0, 1), rzz(0.3, 0, 1)])
        out = merge_rotations(c)
        assert len(out) == 1
        assert out[0].params[0] == pytest.approx(0.5)

    def test_blocked_by_shared_qubit(self):
        c = Circuit(2, [rz(0.2, 0), cx(0, 1), rz(0.3, 0)])
        assert len(merge_rotations(c)) == 3

    def test_disjoint_gates_skipped(self):
        c = Circuit(2, [rz(0.2, 0), x(1), rz(0.3, 0)])
        out = merge_rotations(c)
        assert len(out) == 2


class TestOptimizeCircuit:
    @pytest.mark.parametrize("gates", [
        [h(0), cx(0, 1), cx(0, 1), h(0), rz(0.3, 1), rz(0.3, 1)],
        [x(0), h(1), x(0), cx(1, 2), rz(1.0, 2), rz(-1.0, 2), cx(1, 2)],
        [ccx(0, 1, 2), x(0), x(0), ccx(0, 1, 2)],
    ])
    def test_semantics_preserved(self, gates):
        c = Circuit(3, gates)
        optimized = optimize_circuit(c)
        assert circuits_equivalent(c, optimized)
        assert len(optimized) <= len(c)

    def test_report(self):
        before = Circuit(1, [x(0), x(0), rz(0.1, 0)])
        after = optimize_circuit(before)
        report = optimization_report(before, after)
        assert report["gates_removed"] == 2
        assert report["gates_after"] == 1

    def test_idempotent(self):
        c = Circuit(2, [h(0), cx(0, 1), rz(0.5, 1)])
        once = optimize_circuit(c)
        twice = optimize_circuit(once)
        assert once == twice

    def test_uncomputation_pattern_shrinks(self):
        # compute-act-uncompute where the action commutes trivially:
        # the compute/uncompute Toffolis around an untouched qubit cancel.
        c = Circuit(4, [ccx(0, 1, 2), x(3), ccx(0, 1, 2)])
        optimized = optimize_circuit(c)
        assert len(optimized) == 1
