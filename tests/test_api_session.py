"""Tests for the session-scoped execution API (repro.api.session).

The tentpole contract: two differently-configured sessions coexist in
one process, execution policy is resolved from the *active* session (no
process-wide mutable globals), and experiments run through a session
pick up its jobs / cache / RNG policy.
"""

import pytest

from repro.api import Session, current_session, default_session, install_default
from repro.core.config import CompilerConfig
from repro.exec.cache import CACHE_DIR_ENV, cached_compile
from repro.exec.keys import derive_seed
from repro.experiments import fig10_loss_tolerance
from repro.hardware.topology import Topology
from repro.loss.runner import ShotSpec, run_shot_specs
from repro.workloads.registry import build_circuit


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


def _inputs():
    circuit = build_circuit("bv", 6)
    topology = Topology.square(5, 3.0)
    config = CompilerConfig(max_interaction_distance=3.0)
    return circuit, topology, config


class TestIsolation:
    def test_two_sessions_with_distinct_cache_dirs(self, tmp_path):
        """The headline requirement: two sessions, different cache dirs,
        one process — state never leaks between them."""
        a = Session(jobs=1, cache_dir=str(tmp_path / "a"))
        b = Session(jobs=2, cache_dir=str(tmp_path / "b"))
        circuit, topology, config = _inputs()

        with a.activate():
            assert current_session() is a
            program_a = cached_compile(circuit, topology, config)
        with b.activate():
            assert current_session() is b
            program_b = cached_compile(circuit, topology, config)

        # Each session compiled independently into its own tiers.
        assert program_a is not program_b
        assert a.cache.stats()["misses"] == 1
        assert b.cache.stats()["misses"] == 1
        assert a.cache.disk_stats()["entries"] == 1
        assert b.cache.disk_stats()["entries"] == 1
        assert a.cache.path != b.cache.path
        # ... but produced identical artifacts.
        assert program_a.schedule == program_b.schedule

    def test_two_sessions_with_different_jobs(self, tmp_path):
        serial = Session(jobs=1, cache_dir=str(tmp_path))
        parallel = Session(jobs=2, cache_dir=str(tmp_path))
        specs = [ShotSpec(strategy="always reload", benchmark="bv",
                          program_size=6, grid_side=5, mid=3.0,
                          max_shots=10, seed=derive_seed("t=s"))]
        with serial.activate():
            from repro.exec.engine import current_jobs
            assert current_jobs() == 1
            one = run_shot_specs(specs)
        with parallel.activate():
            from repro.exec.engine import current_jobs
            assert current_jobs() == 2
            two = run_shot_specs(specs)
        assert one == two  # worker count never changes results

    def test_nested_activation_restores_outer(self):
        outer, inner = Session(jobs=3), Session(jobs=5)
        with outer.activate():
            with inner.activate():
                assert current_session() is inner
            assert current_session() is outer
        assert current_session() is not outer

    def test_activation_restores_on_exception(self):
        session = Session()
        with pytest.raises(RuntimeError):
            with session.activate():
                raise RuntimeError("boom")
        assert current_session() is not session


class TestDefaultSession:
    def test_default_built_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        install_default(None)
        assert default_session().cache.path == str(tmp_path)

    def test_default_memory_only_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        install_default(None)
        assert default_session().cache.path is None

    def test_install_default_returns_previous(self):
        first = default_session()
        replacement = Session(jobs=4)
        assert install_default(replacement) is first
        assert default_session() is replacement


class TestSessionConstruction:
    def test_jobs_validated(self):
        with pytest.raises(ValueError):
            Session(jobs=0)

    def test_cache_and_cache_dir_mutually_exclusive(self, tmp_path):
        from repro.exec.cache import CompileCache

        with pytest.raises(ValueError):
            Session(cache=CompileCache(None), cache_dir=str(tmp_path))

    def test_shared_cache_object(self):
        from repro.exec.cache import CompileCache

        shared = CompileCache(None)
        a, b = Session(cache=shared), Session(cache=shared)
        assert a.cache is b.cache


class TestRunExperiment:
    TINY = dict(benchmarks=("cnu",), mids=(2.0,), program_size=12, trials=1)

    def test_run_by_name(self):
        result = Session().run("fig10", **self.TINY)
        assert type(result).__name__ == "Fig10Result"
        assert ("cnu", "recompile", 2.0) in result.cells

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            Session().run("fig99")

    def test_unknown_parameter(self):
        with pytest.raises(TypeError, match="no parameter"):
            Session().run("fig10", not_a_param=1)

    def test_quick_preset_applies(self):
        from repro.api import get_experiment

        spec = get_experiment("fig10")
        assert spec.quick["trials"] == 2
        # quick keys are a subset of the declared parameter schema
        assert set(spec.quick) <= set(spec.param_defaults())

    def test_session_seed_policy(self):
        """Session(seed=N) forwards N as the rng of seed-accepting
        experiments unless the caller overrides it."""
        seeded = Session(seed=7).run("fig10", **self.TINY)
        explicit = fig10_loss_tolerance.run(rng=7, **self.TINY)
        assert seeded.cells.keys() == explicit.cells.keys()
        assert all(
            seeded.cells[k].losses_sustained == explicit.cells[k].losses_sustained
            for k in seeded.cells
        )
        default = Session().run("fig10", **self.TINY)
        baseline = fig10_loss_tolerance.run(**self.TINY)
        assert all(
            default.cells[k].losses_sustained == baseline.cells[k].losses_sustained
            for k in default.cells
        )

    def test_every_spec_has_doc_and_result_type(self):
        from repro.api import ExperimentResult, all_experiments

        specs = all_experiments()
        assert len(specs) == 24
        for name, spec in specs.items():
            assert spec.doc, name
            assert issubclass(spec.result_type, ExperimentResult), name
            assert spec.result_type.experiment_name == name
            assert set(spec.quick) <= {p.name for p in spec.params}, name


class TestTaskAccounting:
    def test_run_tasks_counts_dispatched_tasks(self):
        from repro.exec.engine import run_tasks

        session = Session()
        with session.activate():
            run_tasks(len, [(1, 2), (3,)])
        assert session.tasks_executed == 2
        run_tasks(len, [(4,)], session=session)
        assert session.tasks_executed == 3

    def test_experiment_run_dispatches_tasks(self):
        session = Session()
        session.run("fig10", **TestRunExperiment.TINY)
        assert session.tasks_executed > 0


class TestWorkerInheritance:
    def test_workers_share_session_disk_cache(self, tmp_path):
        """Spawn workers compile into the session's cache directory, so a
        later session over the same directory reads their artifacts."""
        specs = [ShotSpec(strategy="always reload", benchmark="bv",
                          program_size=6, grid_side=5, mid=3.0,
                          max_shots=5, seed=derive_seed(f"w={i}"))
                 for i in range(2)]
        with Session(jobs=2, cache_dir=str(tmp_path)).activate():
            run_shot_specs(specs)
        reader = Session(cache_dir=str(tmp_path))
        circuit, topology, config = _inputs()
        with reader.activate():
            cached_compile(circuit, topology, config)
        assert reader.cache.stats()["disk_hits"] == 1
        assert reader.cache.stats()["misses"] == 0
