"""Tests for the Monte-Carlo noisy sampler and its agreement with §V."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gates import cx, h, x
from repro.hardware import NoiseModel
from repro.sim import sample_noisy_shots
from repro.workloads import bernstein_vazirani


class TestNoiselessLimit:
    def test_perfect_gates_always_succeed(self):
        noise = NoiseModel("perfect", {1: 1.0, 2: 1.0}, 1.0, 1.0, {2: 1e-6})
        result = sample_noisy_shots(bernstein_vazirani(5), noise, shots=50)
        assert result.successes == 50
        assert result.analytic_estimate == pytest.approx(1.0)

    def test_broken_gates_rarely_succeed(self):
        noise = NoiseModel("broken", {1: 0.99, 2: 0.0}, 1.0, 1.0, {2: 1e-6})
        result = sample_noisy_shots(bernstein_vazirani(5), noise, shots=50,
                                    rng=1)
        assert result.analytic_estimate == 0.0
        # Random Paulis can occasionally cancel; just require heavy failure.
        assert result.successes < 25


class TestAgreementWithAnalytic:
    @pytest.mark.parametrize("error", [0.005, 0.02])
    def test_empirical_close_to_analytic(self, error):
        noise = NoiseModel.neutral_atom(two_qubit_error=error)
        result = sample_noisy_shots(
            bernstein_vazirani(6), noise, shots=600, rng=0
        )
        # The analytic product is a (slightly pessimistic) estimate: random
        # Paulis sometimes restore the state.  Require agreement within a
        # generous statistical band.
        assert result.empirical_rate == pytest.approx(
            result.analytic_estimate, abs=0.08
        )

    def test_analytic_is_lower_bound_on_average(self):
        noise = NoiseModel.neutral_atom(two_qubit_error=0.03)
        result = sample_noisy_shots(
            bernstein_vazirani(6), noise, shots=800, rng=3
        )
        assert result.empirical_rate >= result.analytic_estimate - 0.05


class TestMechanics:
    def test_deterministic_by_seed(self):
        noise = NoiseModel.neutral_atom(two_qubit_error=0.05)
        circuit = Circuit(3, [h(0), cx(0, 1), cx(1, 2)])
        a = sample_noisy_shots(circuit, noise, shots=100, rng=9)
        b = sample_noisy_shots(circuit, noise, shots=100, rng=9)
        assert a.successes == b.successes

    def test_initial_bits_respected(self):
        noise = NoiseModel("perfect", {1: 1.0, 2: 1.0}, 1.0, 1.0, {2: 1e-6})
        circuit = Circuit(2, [cx(0, 1)])
        result = sample_noisy_shots(circuit, noise, shots=10,
                                    initial_bits="10")
        assert result.successes == 10

    def test_include_coherence_lowers_estimate(self):
        noise = NoiseModel.neutral_atom(two_qubit_error=0.01)
        circuit = bernstein_vazirani(5)
        without = sample_noisy_shots(circuit, noise, shots=10, rng=0)
        with_coh = sample_noisy_shots(circuit, noise, shots=10, rng=0,
                                      include_coherence=True)
        assert with_coh.analytic_estimate <= without.analytic_estimate

    def test_empirical_rate_empty(self):
        noise = NoiseModel.neutral_atom()
        result = sample_noisy_shots(Circuit(2, [x(0)]), noise, shots=0)
        assert result.empirical_rate == 0.0
