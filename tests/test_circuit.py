"""Unit tests for the Circuit container."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gates import ccx, cx, h, measure, rz, swap, x


def ghz(n):
    c = Circuit(n)
    c.append(h(0))
    for i in range(1, n):
        c.append(cx(0, i))
    return c


class TestConstruction:
    def test_empty(self):
        c = Circuit(3)
        assert len(c) == 0
        assert c.depth() == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_out_of_range_operand(self):
        c = Circuit(2)
        with pytest.raises(IndexError):
            c.append(cx(0, 2))

    def test_from_iterable(self):
        c = Circuit(2, [h(0), cx(0, 1)])
        assert len(c) == 2

    def test_copy_is_independent(self):
        c = ghz(3)
        d = c.copy()
        d.append(x(0))
        assert len(c) == 3
        assert len(d) == 4

    def test_compose(self):
        a = Circuit(3, [h(0)])
        b = Circuit(2, [cx(0, 1)])
        combined = a.compose(b)
        assert len(combined) == 2
        assert combined.num_qubits == 3

    def test_compose_larger_rejected(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))

    def test_equality(self):
        assert ghz(3) == ghz(3)
        assert ghz(3) != ghz(4)


class TestMetrics:
    def test_depth_serial_chain(self):
        # BV-style: all CX share the ancilla -> fully serial.
        c = Circuit(4)
        for i in range(3):
            c.append(cx(i, 3))
        assert c.depth() == 3

    def test_depth_parallel(self):
        c = Circuit(4, [cx(0, 1), cx(2, 3)])
        assert c.depth() == 1

    def test_layers_structure(self):
        c = Circuit(3, [h(0), h(1), cx(0, 1), x(2)])
        layers = c.layers()
        assert layers[0] == [0, 1, 3]  # h(0), h(1), x(2) all layer 0
        assert layers[1] == [2]

    def test_layers_consistent_with_depth(self):
        c = ghz(6)
        assert len(c.layers()) == c.depth()

    def test_counts_by_arity(self):
        c = Circuit(3, [h(0), cx(0, 1), ccx(0, 1, 2), measure(2)])
        counts = c.counts_by_arity()
        assert counts == {1: 1, 2: 1, 3: 1}  # measurement excluded

    def test_gate_counts_by_name(self):
        c = ghz(4)
        assert c.gate_counts() == {"h": 1, "cx": 3}

    def test_multiqubit_gate_count(self):
        c = Circuit(3, [h(0), cx(0, 1), ccx(0, 1, 2)])
        assert c.multiqubit_gate_count() == 2

    def test_used_qubits(self):
        c = Circuit(5, [cx(1, 3)])
        assert c.used_qubits() == {1, 3}

    def test_parallelism(self):
        serial = Circuit(4, [cx(i, 3) for i in range(3)])
        parallel = Circuit(4, [cx(0, 1), cx(2, 3)])
        assert serial.parallelism() == pytest.approx(1.0)
        assert parallel.parallelism() == pytest.approx(2.0)

    def test_parallelism_empty(self):
        assert Circuit(2).parallelism() == 0.0


class TestTransforms:
    def test_remapped(self):
        c = Circuit(3, [cx(0, 1)]).remapped({0: 2, 1: 0, 2: 1})
        assert c[0].qubits == (2, 0)

    def test_remapped_to_larger_register(self):
        c = Circuit(2, [cx(0, 1)]).remapped({0: 5, 1: 6}, num_qubits=8)
        assert c.num_qubits == 8

    def test_without_measurements(self):
        c = Circuit(2, [h(0), measure(0), measure(1)])
        assert len(c.without_measurements()) == 1

    def test_with_final_measurements_all(self):
        c = ghz(3).with_final_measurements()
        assert sum(1 for g in c if g.is_measurement) == 3

    def test_with_final_measurements_subset(self):
        c = ghz(3).with_final_measurements([1])
        measured = [g.qubits[0] for g in c if g.is_measurement]
        assert measured == [1]

    def test_swap_and_rz_roundtrip_in_container(self):
        c = Circuit(2, [swap(0, 1), rz(0.25, 0)])
        assert c[0].is_swap
        assert c[1].params == (0.25,)
