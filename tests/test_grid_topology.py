"""Unit tests for the grid geometry and occupancy-aware topology."""

import math

import pytest

from repro.hardware import Grid, Topology


class TestGrid:
    def test_indexing_roundtrip(self):
        grid = Grid(4, 5)
        for site in grid.sites():
            r, c = grid.position(site)
            assert grid.site_at(r, c) == site

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Grid(0, 3)

    def test_bounds(self):
        grid = Grid(3, 3)
        with pytest.raises(IndexError):
            grid.position(9)
        with pytest.raises(IndexError):
            grid.site_at(3, 0)
        assert grid.in_bounds(2, 2)
        assert not grid.in_bounds(-1, 0)

    def test_distance_euclidean(self):
        grid = Grid(3, 3)
        assert grid.distance(0, 1) == pytest.approx(1.0)
        assert grid.distance(0, 4) == pytest.approx(math.sqrt(2))
        assert grid.distance(0, 8) == pytest.approx(2 * math.sqrt(2))

    def test_max_distance_matches_paper(self):
        # 10x10 device: hypot(9, 9) ~ 12.73, the paper's "13".
        assert Grid.square(10).max_distance() == pytest.approx(math.hypot(9, 9))

    def test_neighbors_distance_1(self):
        grid = Grid(3, 3)
        assert sorted(grid.neighbors(4, 1.0)) == [1, 3, 5, 7]
        assert sorted(grid.neighbors(0, 1.0)) == [1, 3]

    def test_neighbors_distance_sqrt2(self):
        grid = Grid(3, 3)
        assert len(grid.neighbors(4, math.sqrt(2))) == 8

    def test_neighbors_sorted_nearest_first(self):
        grid = Grid(5, 5)
        nbrs = grid.neighbors(12, 2.0)
        dists = [grid.distance(12, n) for n in nbrs]
        assert dists == sorted(dists)

    def test_center_ordering(self):
        grid = Grid(3, 3)
        order = grid.sites_by_center_distance()
        assert order[0] == 4  # exact center of 3x3
        assert set(order) == set(range(9))

    def test_equality_hash(self):
        assert Grid(3, 4) == Grid(3, 4)
        assert Grid(3, 4) != Grid(4, 3)
        assert hash(Grid.square(5)) == hash(Grid(5, 5))


class TestTopologyOccupancy:
    def test_initial_full(self):
        topo = Topology.square(3, 1.0)
        assert topo.num_active == 9
        assert topo.lost_sites == frozenset()

    def test_mid_below_one_rejected(self):
        with pytest.raises(ValueError):
            Topology.square(3, 0.5)

    def test_remove_and_reload(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(4)
        assert not topo.is_active(4)
        assert topo.num_active == 8
        topo.reload()
        assert topo.num_active == 9

    def test_double_remove_rejected(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(4)
        with pytest.raises(ValueError):
            topo.remove_atom(4)

    def test_remove_out_of_range(self):
        with pytest.raises(IndexError):
            Topology.square(3, 1.0).remove_atom(99)

    def test_copy_independent(self):
        topo = Topology.square(3, 1.0)
        clone = topo.copy()
        clone.remove_atom(0)
        assert topo.is_active(0)

    def test_with_interaction_distance(self):
        topo = Topology.square(3, 3.0)
        topo.remove_atom(1)
        smaller = topo.with_interaction_distance(2.0)
        assert smaller.max_interaction_distance == 2.0
        assert smaller.lost_sites == topo.lost_sites


class TestTopologyInteraction:
    def test_can_interact_within_range(self):
        topo = Topology.square(3, 2.0)
        assert topo.can_interact([0, 2])      # distance 2
        assert not topo.can_interact([0, 8])  # distance 2*sqrt(2)

    def test_can_interact_multiqubit_pairwise(self):
        topo = Topology.square(3, 2.0)
        assert topo.can_interact([0, 1, 2])   # max pair distance 2
        assert not topo.can_interact([0, 4, 8])

    def test_lost_atom_cannot_interact(self):
        topo = Topology.square(3, 2.0)
        topo.remove_atom(1)
        assert not topo.can_interact([0, 1])

    def test_neighbors_exclude_lost(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(1)
        assert 1 not in topo.neighbors(0)


class TestTopologyGraph:
    def test_full_grid_connected(self):
        assert Topology.square(4, 1.0).is_connected()

    def test_wall_of_holes_disconnects(self):
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):  # middle column
            topo.remove_atom(site)
        assert not topo.is_connected()

    def test_larger_mid_bridges_holes(self):
        topo = Topology.square(3, 2.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        assert topo.is_connected()

    def test_hop_distances(self):
        topo = Topology.square(3, 1.0)
        dist = topo.hop_distances_from(0)
        assert dist[0] == 0
        assert dist[8] == 4  # manhattan on unit grid

    def test_hop_distances_from_lost_site_rejected(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(0)
        with pytest.raises(ValueError):
            topo.hop_distances_from(0)

    def test_shortest_path_endpoints(self):
        topo = Topology.square(3, 1.0)
        path = topo.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5
        for a, b in zip(path, path[1:]):
            assert topo.distance(a, b) <= 1.0 + 1e-9

    def test_shortest_path_avoids_holes(self):
        topo = Topology.square(3, 1.0)
        topo.remove_atom(4)  # center
        path = topo.shortest_path(3, 5)
        assert 4 not in path

    def test_shortest_path_disconnected_none(self):
        topo = Topology.square(3, 1.0)
        for site in (1, 4, 7):
            topo.remove_atom(site)
        assert topo.shortest_path(0, 2) is None

    def test_shortest_path_identity(self):
        topo = Topology.square(3, 1.0)
        assert topo.shortest_path(5, 5) == [5]
