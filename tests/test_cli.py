"""CLI regression tests (python -m repro).

The load-bearing assertions: ``run <x> --quick --format text`` is
byte-identical to the pre-session-API fixtures captured from the seed
CLI (tests/fixtures/), at any ``--jobs`` value, and ``--format json``
emits a parseable envelope that round-trips through
``ExperimentResult.from_dict``.
"""

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.api import ExperimentResult, all_experiments
from repro.api.session import install_default

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


def _fixture(name: str) -> str:
    return (FIXTURES / name).read_text()


def _run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestTextRegression:
    """--format text must be byte-identical to the seed CLI output."""

    def test_validation_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick", "--no-cache")
        assert out == _fixture("validation_quick.txt")

    def test_fig3_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "fig3", "--quick", "--no-cache")
        assert out == _fixture("fig3_quick.txt")

    def test_fig10_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "fig10", "--quick", "--no-cache")
        assert out == _fixture("fig10_quick.txt")

    def test_fig10_quick_identical_at_jobs_2(self, capsys, tmp_path):
        """The acceptance criterion: byte-identical at any --jobs."""
        out = _run_cli(capsys, "run", "fig10", "--quick",
                       "--jobs", "2", "--cache-dir", str(tmp_path))
        assert out == _fixture("fig10_quick.txt")

    def test_explicit_format_text_flag(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "text", "--no-cache")
        assert out == _fixture("validation_quick.txt")


class TestJsonOutput:
    def test_json_parses_and_round_trips(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "json", "--no-cache")
        payload = json.loads(out)
        result = ExperimentResult.from_dict(payload)
        # The decoded object renders the same text the text mode prints.
        assert result.format() + "\n\n" == _fixture("validation_quick.txt")

    def test_json_envelope_fields(self, capsys):
        payload = json.loads(_run_cli(
            capsys, "run", "fig10", "--quick", "--format", "json",
            "--no-cache"))
        assert payload["experiment"] == "fig10"
        assert payload["result_type"] == "Fig10Result"
        decoded = ExperimentResult.from_dict(payload)
        assert decoded.format() + "\n\n" == _fixture("fig10_quick.txt")

    def test_out_writes_file_and_keeps_stdout_clean(self, capsys, tmp_path):
        target = tmp_path / "validation.json"
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "json", "--out", str(target),
                       "--no-cache")
        assert out == ""
        payload = json.loads(target.read_text())
        assert ExperimentResult.from_dict(payload).format()

    def test_out_text_mode_is_byte_identical_to_stdout(self, capsys,
                                                       tmp_path):
        target = tmp_path / "validation.txt"
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "text", "--out", str(target),
                       "--no-cache")
        assert out == ""
        assert target.read_text() == _fixture("validation_quick.txt")


class TestListAndErrors:
    def test_list_names_every_registered_experiment(self, capsys):
        out = _run_cli(capsys, "list")
        for name in all_experiments():
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_jobs_fails(self, capsys):
        assert main(["run", "fig3", "--jobs", "0"]) == 2

    def test_unwritable_out_fails_cleanly(self, capsys, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "f.json"
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--out", str(target), "--no-cache"]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_text_out_still_emits_timing_diagnostics(self, capsys,
                                                     tmp_path):
        target = tmp_path / "v.txt"
        assert main(["run", "validation", "--quick", "--format", "text",
                     "--out", str(target), "--no-cache"]) == 0
        assert "regenerated in" in capsys.readouterr().err


class TestCacheSubcommand:
    def _warm(self, cache_dir) -> None:
        from repro.api import Session
        from repro.core.config import CompilerConfig
        from repro.exec.cache import cached_compile
        from repro.hardware.topology import Topology
        from repro.workloads.registry import build_circuit

        with Session(cache_dir=str(cache_dir)).activate():
            topology = Topology.square(5, 3.0)
            config = CompilerConfig(max_interaction_distance=3.0)
            for size in (4, 6):
                cached_compile(build_circuit("bv", size), topology, config)

    def test_stats(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "stats", "--cache-dir",
                       str(tmp_path))
        assert "entries:         2" in out
        assert str(tmp_path) in out

    def test_clear(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "clear", "--cache-dir",
                       str(tmp_path))
        assert "removed 2 entries" in out
        out = _run_cli(capsys, "cache", "stats", "--cache-dir",
                       str(tmp_path))
        assert "entries:         0" in out

    def test_prune_to_zero(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "prune", "--max-size", "0",
                       "--cache-dir", str(tmp_path))
        assert "removed 2 least-recently-used entries" in out
        assert "0 remain" in out

    def test_prune_generous_budget_keeps_everything(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "prune", "--max-size", "100",
                       "--cache-dir", str(tmp_path))
        assert "removed 0" in out

    def test_prune_negative_max_size_fails_cleanly(self, capsys, tmp_path):
        assert main(["cache", "prune", "--max-size", "-1",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "--max-size" in capsys.readouterr().err
