"""CLI regression tests (python -m repro).

The load-bearing assertions: ``run <x> --quick --format text`` is
byte-identical to the pre-session-API fixtures captured from the seed
CLI (tests/fixtures/), at any ``--jobs`` value, and ``--format json``
emits a parseable envelope that round-trips through
``ExperimentResult.from_dict``.
"""

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.api import ExperimentResult, all_experiments
from repro.api.session import install_default

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture(autouse=True)
def fresh_default_session():
    saved = install_default(None)
    yield
    install_default(saved)


def _fixture(name: str) -> str:
    return (FIXTURES / name).read_text()


def _run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestTextRegression:
    """--format text must be byte-identical to the seed CLI output."""

    def test_validation_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick", "--no-cache")
        assert out == _fixture("validation_quick.txt")

    def test_fig3_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "fig3", "--quick", "--no-cache")
        assert out == _fixture("fig3_quick.txt")

    def test_fig10_quick_matches_seed_fixture(self, capsys):
        out = _run_cli(capsys, "run", "fig10", "--quick", "--no-cache")
        assert out == _fixture("fig10_quick.txt")

    def test_fig10_quick_identical_at_jobs_2(self, capsys, tmp_path):
        """The acceptance criterion: byte-identical at any --jobs."""
        out = _run_cli(capsys, "run", "fig10", "--quick",
                       "--jobs", "2", "--cache-dir", str(tmp_path))
        assert out == _fixture("fig10_quick.txt")

    def test_explicit_format_text_flag(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "text", "--no-cache")
        assert out == _fixture("validation_quick.txt")


class TestJsonOutput:
    def test_json_parses_and_round_trips(self, capsys):
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "json", "--no-cache")
        payload = json.loads(out)
        result = ExperimentResult.from_dict(payload)
        # The decoded object renders the same text the text mode prints.
        assert result.format() + "\n\n" == _fixture("validation_quick.txt")

    def test_json_envelope_fields(self, capsys):
        payload = json.loads(_run_cli(
            capsys, "run", "fig10", "--quick", "--format", "json",
            "--no-cache"))
        assert payload["experiment"] == "fig10"
        assert payload["result_type"] == "Fig10Result"
        decoded = ExperimentResult.from_dict(payload)
        assert decoded.format() + "\n\n" == _fixture("fig10_quick.txt")

    def test_out_writes_file_and_keeps_stdout_clean(self, capsys, tmp_path):
        target = tmp_path / "validation.json"
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "json", "--out", str(target),
                       "--no-cache")
        assert out == ""
        payload = json.loads(target.read_text())
        assert ExperimentResult.from_dict(payload).format()

    def test_out_text_mode_is_byte_identical_to_stdout(self, capsys,
                                                       tmp_path):
        target = tmp_path / "validation.txt"
        out = _run_cli(capsys, "run", "validation", "--quick",
                       "--format", "text", "--out", str(target),
                       "--no-cache")
        assert out == ""
        assert target.read_text() == _fixture("validation_quick.txt")


class TestListAndErrors:
    def test_list_names_every_registered_experiment(self, capsys):
        out = _run_cli(capsys, "list")
        for name in all_experiments():
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99", "--quick"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_jobs_fails(self, capsys):
        assert main(["run", "fig3", "--jobs", "0"]) == 2

    def test_unwritable_out_fails_cleanly(self, capsys, tmp_path):
        # The out path *is* a directory: unwritable on every platform,
        # even running as root (where chmod-based denial is a no-op).
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--out", str(tmp_path), "--no-cache"]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_out_creates_missing_parent_directories(self, capsys, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "f.json"
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--out", str(target), "--no-cache"]) == 0
        json.loads(target.read_text())

    def test_out_always_ends_with_a_newline(self, tmp_path):
        from repro.__main__ import _emit

        target = tmp_path / "payload.txt"
        _emit("no trailing newline", str(target))
        assert target.read_text().endswith("\n")
        _emit("already terminated\n", str(target))
        assert target.read_text() == "already terminated\n"

    def test_text_out_still_emits_timing_diagnostics(self, capsys,
                                                     tmp_path):
        target = tmp_path / "v.txt"
        assert main(["run", "validation", "--quick", "--format", "text",
                     "--out", str(target), "--no-cache"]) == 0
        assert "regenerated in" in capsys.readouterr().err

    def test_interrupt_exits_130(self, capsys, monkeypatch):
        """Ctrl-C mid-run surfaces as the conventional SIGINT status,
        not a traceback."""
        from repro.api import Session

        def interrupted(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(Session, "run", interrupted)
        assert main(["run", "validation", "--quick", "--no-cache"]) == 130
        captured = capsys.readouterr()
        assert "[interrupted]" in captured.err
        assert captured.out == ""


class TestServeSubcommand:
    def test_bad_jobs_fails_before_binding(self, capsys):
        # 0 is legal now (fleet-only serving); negatives still are not.
        assert main(["serve", "--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_bad_lease_ttl_fails_before_binding(self, capsys):
        assert main(["serve", "--lease-ttl", "0"]) == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_unbindable_port_fails_cleanly(self, capsys, tmp_path):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            port = blocker.getsockname()[1]
            assert main(["serve", "--port", str(port),
                         "--store", str(tmp_path / "store"),
                         "--no-cache"]) == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()

    def test_port_zero_prints_bound_address_first(self, tmp_path):
        """`serve --port 0` binds an ephemeral port and announces it as
        the FIRST stderr line, machine-parseable — scripts (and the CI
        fleet smoke) read the real port from there."""
        import os
        import re
        import signal
        import subprocess
        import sys
        import urllib.request

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(pathlib.Path(__file__).parent.parent / "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "store"), "--no-cache",
             "--jobs", "1", "--quiet"],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            first = process.stderr.readline()
            match = re.match(
                r"\[serve\] listening on http://127\.0\.0\.1:(\d+)\n",
                first)
            assert match, f"unexpected first stderr line: {first!r}"
            port = int(match.group(1))
            assert port != 0
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5) as r:
                assert r.status == 200
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=15) == 130
        finally:
            if process.poll() is None:
                process.kill()
            process.stderr.close()

    def test_sigint_shuts_down_cleanly_with_130(self, tmp_path):
        """The full-process contract: `kill -INT` on a running server
        (even one backgrounded by a non-interactive shell, where SIGINT
        starts out ignored) drains and exits 130."""
        import os
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(pathlib.Path(__file__).parent.parent / "src"),
             env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store", str(tmp_path / "store"), "--no-cache",
             "--jobs", "1", "--quiet"],
            env=env, stderr=subprocess.PIPE, text=True,
            preexec_fn=lambda: signal.signal(signal.SIGINT,
                                             signal.SIG_IGN))
        try:
            # The startup line names the bound (ephemeral) port.
            import re

            startup = process.stderr.readline()
            port = int(re.search(r"http://[^:]+:(\d+)", startup).group(1))
            deadline = time.time() + 10
            while time.time() < deadline:
                try:
                    urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/healthz", timeout=1)
                    break
                except OSError:
                    time.sleep(0.05)
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=15) == 130
        finally:
            if process.poll() is None:
                process.kill()
            process.stderr.close()


class TestCacheSubcommand:
    def _warm(self, cache_dir) -> None:
        from repro.api import Session
        from repro.core.config import CompilerConfig
        from repro.exec.cache import cached_compile
        from repro.hardware.topology import Topology
        from repro.workloads.registry import build_circuit

        with Session(cache_dir=str(cache_dir)).activate():
            topology = Topology.square(5, 3.0)
            config = CompilerConfig(max_interaction_distance=3.0)
            for size in (4, 6):
                cached_compile(build_circuit("bv", size), topology, config)

    def test_stats(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "stats", "--cache-dir",
                       str(tmp_path))
        assert "entries:         2" in out
        assert str(tmp_path) in out

    def test_clear(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "clear", "--cache-dir",
                       str(tmp_path))
        assert "removed 2 entries" in out
        out = _run_cli(capsys, "cache", "stats", "--cache-dir",
                       str(tmp_path))
        assert "entries:         0" in out

    def test_prune_to_zero(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "prune", "--max-size", "0",
                       "--cache-dir", str(tmp_path))
        assert "removed 2 least-recently-used entries" in out
        assert "0 remain" in out

    def test_prune_generous_budget_keeps_everything(self, capsys, tmp_path):
        self._warm(tmp_path)
        out = _run_cli(capsys, "cache", "prune", "--max-size", "100",
                       "--cache-dir", str(tmp_path))
        assert "removed 0" in out

    def test_prune_negative_max_size_fails_cleanly(self, capsys, tmp_path):
        assert main(["cache", "prune", "--max-size", "-1",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "--max-size" in capsys.readouterr().err


class TestCacheStatsAttribution:
    def test_two_runs_report_disjoint_counts(self, capsys, tmp_path):
        """The stats line after a run must reflect the session actually
        activated for that run — two differently-configured runs in one
        process never bleed counters into each other."""
        cold = tmp_path / "cold-dir"
        assert main(["run", "validation", "--quick",
                     "--cache-dir", str(cold)]) == 0
        first = capsys.readouterr().err
        cold_line = [l for l in first.splitlines()
                     if "compile cache" in l][0]
        assert "0 memory hits, 0 disk hits, 5 misses" in cold_line

        # Second invocation, same process, warm directory: its (fresh)
        # session reports only its own disk hits — the first run's five
        # misses must not reappear.
        assert main(["run", "validation", "--quick",
                     "--cache-dir", str(cold)]) == 0
        second = capsys.readouterr().err
        warm_line = [l for l in second.splitlines()
                     if "compile cache" in l][0]
        assert "5 disk hits, 0 misses" in warm_line
        assert "5 misses" not in warm_line


class TestStoreCLI:
    def _json_run(self, capsys, store, *extra) -> str:
        return _run_cli(capsys, "run", "validation", "--quick",
                        "--format", "json", "--no-cache",
                        "--store", str(store), *extra)

    def test_replay_is_byte_identical(self, capsys, tmp_path):
        store = tmp_path / "store"
        first = self._json_run(capsys, store)
        second = self._json_run(capsys, store)
        assert second == first

        from repro.api import ResultStore

        events = ResultStore(str(store)).ledger_entries()
        assert [e["hit"] for e in events] == [False, True]

    def test_replay_marks_the_diagnostic(self, tmp_path, capsys):
        store = tmp_path / "store"
        self._json_run(capsys, store)
        assert main(["run", "validation", "--quick", "--format", "json",
                     "--no-cache", "--store", str(store)]) == 0
        assert "replayed from result store" in capsys.readouterr().err

    def test_force_recomputes(self, capsys, tmp_path):
        store = tmp_path / "store"
        first = self._json_run(capsys, store)
        forced = self._json_run(capsys, store, "--force")
        assert forced == first

        from repro.api import ResultStore

        events = ResultStore(str(store)).ledger_entries()
        assert [e["hit"] for e in events] == [False, False]

    def test_ls_show_gc(self, capsys, tmp_path):
        store = tmp_path / "store"
        payload = json.loads(self._json_run(capsys, store))

        out = _run_cli(capsys, "store", "ls", "--store-dir", str(store))
        assert "validation" in out
        assert "1 stored result(s)" in out
        key = out.split()[0]

        shown = _run_cli(capsys, "store", "show", key[:12],
                         "--format", "json", "--store-dir", str(store))
        assert json.loads(shown) == payload
        # Byte-identical to the run's --format json stdout.
        assert shown == self._json_run(capsys, store)

        text = _run_cli(capsys, "store", "show", key,
                        "--store-dir", str(store))
        assert ExperimentResult.from_dict(payload).format() in text

        out = _run_cli(capsys, "store", "gc", "--max-size", "0",
                       "--store-dir", str(store))
        assert "removed 1 least-recently-used results" in out
        out = _run_cli(capsys, "store", "ls", "--store-dir", str(store))
        assert "0 stored result(s)" in out

    def test_ls_last_shows_recent_runs_from_the_ledger_tail(self, capsys,
                                                            tmp_path):
        store = tmp_path / "store"
        self._json_run(capsys, store)   # miss
        self._json_run(capsys, store)   # hit

        out = _run_cli(capsys, "store", "ls", "--last", "1",
                       "--store-dir", str(store))
        # Only the newest event is shown, and it was a hit.
        assert out.startswith("hit ")
        assert "validation" in out
        assert "last 1 run(s)" in out

        out = _run_cli(capsys, "store", "ls", "--last", "10",
                       "--store-dir", str(store))
        lines = out.splitlines()
        assert lines[0].startswith("miss")
        assert lines[1].startswith("hit ")
        assert "last 2 run(s)" in lines[2]

    def test_ls_last_rejects_nonpositive(self, capsys, tmp_path):
        assert main(["store", "ls", "--last", "0",
                     "--store-dir", str(tmp_path)]) == 2
        assert "--last" in capsys.readouterr().err

    def test_show_unknown_key_fails_cleanly(self, capsys, tmp_path):
        assert main(["store", "show", "feedbeef",
                     "--store-dir", str(tmp_path)]) == 2
        assert "no stored result matches" in capsys.readouterr().err

    def test_gc_negative_max_size_fails_cleanly(self, capsys, tmp_path):
        assert main(["store", "gc", "--max-size", "-1",
                     "--store-dir", str(tmp_path)]) == 2
        assert "--max-size" in capsys.readouterr().err


CLI_QASM = ("OPENQASM 2.0;\n"
            "qreg q[3];\n"
            "h q[0];\n"
            "cx q[0],q[1];\n"
            "rz(0.5) q[2];\n")


class TestCircuitsCLI:
    def _qasm_file(self, tmp_path):
        path = tmp_path / "prog.qasm"
        path.write_text(CLI_QASM)
        return str(path)

    def test_add_prints_the_ref_and_is_idempotent(self, capsys, tmp_path):
        out = _run_cli(capsys, "circuits", "add",
                       self._qasm_file(tmp_path),
                       "--circuit-dir", str(tmp_path / "circuits"))
        ref = out.strip()
        assert ref.startswith("circuit:") and len(ref) == 72
        again = _run_cli(capsys, "circuits", "add",
                         self._qasm_file(tmp_path),
                         "--circuit-dir", str(tmp_path / "circuits"))
        assert again.strip() == ref

    def test_ls_and_show_round_trip(self, capsys, tmp_path):
        from repro.circuits import from_qasm, to_qasm

        ref = _run_cli(capsys, "circuits", "add",
                       self._qasm_file(tmp_path),
                       "--circuit-dir", str(tmp_path / "c")).strip()
        digest = ref[len("circuit:"):]
        listing = _run_cli(capsys, "circuits", "ls",
                           "--circuit-dir", str(tmp_path / "c"))
        assert ref in listing and "1 stored circuit(s)" in listing
        # show accepts the digest, the ref spelling, and unique prefixes.
        for spelling in (digest, ref, digest[:10]):
            shown = _run_cli(capsys, "circuits", "show", spelling,
                             "--circuit-dir", str(tmp_path / "c"))
            assert shown == to_qasm(from_qasm(CLI_QASM))

    def test_add_rejects_bad_qasm_with_the_line(self, capsys, tmp_path):
        path = tmp_path / "bad.qasm"
        path.write_text("OPENQASM 2.0;\nqreg q[2];\nbad q[0];\n")
        assert main(["circuits", "add", str(path),
                     "--circuit-dir", str(tmp_path / "c")]) == 2
        assert "line 3" in capsys.readouterr().err

    def test_show_unknown_digest_fails_cleanly(self, capsys, tmp_path):
        assert main(["circuits", "show", "feedbeef",
                     "--circuit-dir", str(tmp_path)]) == 2
        assert "no stored circuit matches" in capsys.readouterr().err

    def test_run_with_circuit_flag_end_to_end(self, capsys, tmp_path):
        """`run EXP --circuit FILE` ingests the file and runs against
        its digest; a re-run replays from the store byte-identically."""
        cold = _run_cli(capsys, "run", "workload-metrics", "--quick",
                        "--circuit", self._qasm_file(tmp_path),
                        "--circuit-dir", str(tmp_path / "c"),
                        "--store", str(tmp_path / "s"),
                        "--no-cache", "--format", "json")
        assert main(["run", "workload-metrics", "--quick",
                     "--circuit", self._qasm_file(tmp_path),
                     "--circuit-dir", str(tmp_path / "c"),
                     "--store", str(tmp_path / "s"),
                     "--no-cache", "--format", "json"]) == 0
        captured = capsys.readouterr()
        assert captured.out == cold
        assert "replayed from result store" in captured.err
        envelope = json.loads(cold)
        assert envelope["data"]["fields"]["workload"].startswith("circuit:")
        assert envelope["data"]["fields"]["realized_size"] == 3

    def test_run_circuit_needs_a_circuit_param(self, capsys, tmp_path):
        assert main(["run", "validation", "--quick",
                     "--circuit", self._qasm_file(tmp_path),
                     "--circuit-dir", str(tmp_path / "c")]) == 2
        err = capsys.readouterr().err
        assert "takes no circuit parameter" in err

    def test_run_circuit_rejects_all(self, capsys, tmp_path):
        assert main(["run", "all", "--quick",
                     "--circuit", self._qasm_file(tmp_path)]) == 2
        assert "not 'all'" in capsys.readouterr().err

    def test_store_ls_shows_the_workload_column(self, capsys, tmp_path):
        _run_cli(capsys, "run", "workload-metrics", "--quick",
                 "--circuit", self._qasm_file(tmp_path),
                 "--circuit-dir", str(tmp_path / "c"),
                 "--store", str(tmp_path / "s"), "--no-cache")
        _run_cli(capsys, "run", "validation", "--quick",
                 "--store", str(tmp_path / "s"), "--no-cache")
        listing = _run_cli(capsys, "store", "ls",
                           "--store-dir", str(tmp_path / "s"))
        lines = listing.splitlines()
        workload_line = next(l for l in lines if "workload-metrics" in l)
        assert "circuit:" in workload_line and "…" in workload_line
        validation_line = next(l for l in lines if "validation" in l)
        assert " - " in validation_line
