"""Unit tests for the declarative grid layer (repro.exec.grid)."""

from dataclasses import dataclass

import pytest

from repro.api.session import Session, install_default
from repro.exec.grid import SEED_FIELD, cell_key, grid_map
from repro.exec.keys import derive_seed, task_key


@pytest.fixture(autouse=True)
def fresh_state():
    saved = install_default(None)
    yield
    install_default(saved)


@dataclass(frozen=True)
class Cell:
    benchmark: str
    mid: float
    seed: int = 0


def echo_task(cell):
    """Module-level so spawn-based workers can import it."""
    if isinstance(cell, dict):
        return (cell["benchmark"], cell["mid"], cell[SEED_FIELD])
    return (cell.benchmark, cell.mid, cell.seed)


class TestCellKey:
    def test_matches_hand_rolled_task_key(self):
        cell = Cell(benchmark="bv", mid=3.0)
        assert cell_key("fig99", cell) == task_key(
            experiment="fig99", benchmark="bv", mid=3.0)

    def test_seed_never_enters_the_key(self):
        assert (cell_key("x", Cell("bv", 3.0, seed=0))
                == cell_key("x", Cell("bv", 3.0, seed=123)))

    def test_dict_and_dataclass_cells_agree(self):
        assert (cell_key("x", {"benchmark": "bv", "mid": 3.0})
                == cell_key("x", Cell("bv", 3.0)))

    def test_non_primitive_fields_are_skipped_automatically(self):
        cell = {"benchmark": "bv", "mid": 3.0, "model": object()}
        assert cell_key("x", cell) == cell_key(
            "x", {"benchmark": "bv", "mid": 3.0})

    def test_explicit_key_fields_pin_the_schema(self):
        wide = {"benchmark": "bv", "mid": 3.0, "grid_side": 10}
        assert cell_key("x", wide, key_fields=("benchmark", "mid")) == \
            cell_key("x", {"benchmark": "bv", "mid": 3.0})

    def test_explicit_key_field_must_exist_and_be_primitive(self):
        with pytest.raises(KeyError):
            cell_key("x", {"a": 1}, key_fields=("missing",))
        with pytest.raises(TypeError):
            cell_key("x", {"a": object()}, key_fields=("a",))

    def test_rejects_non_cell_types(self):
        with pytest.raises(TypeError):
            cell_key("x", ["not", "a", "cell"])


class TestGridMap:
    def test_stamps_key_derived_seeds_in_order(self):
        cells = [Cell("bv", 2.0), Cell("bv", 3.0)]
        results = grid_map(echo_task, cells, experiment="t", base_seed=7)
        expected = [
            ("bv", 2.0, derive_seed(cell_key("t", cells[0]), base=7)),
            ("bv", 3.0, derive_seed(cell_key("t", cells[1]), base=7)),
        ]
        assert results == expected

    def test_caller_seed_is_overwritten(self):
        polluted = [Cell("bv", 2.0, seed=999)]
        clean = [Cell("bv", 2.0, seed=0)]
        assert (grid_map(echo_task, polluted, experiment="t")
                == grid_map(echo_task, clean, experiment="t"))

    def test_dict_cells_get_the_seed_field_injected(self):
        [(_, _, seed)] = grid_map(
            echo_task, [{"benchmark": "bv", "mid": 2.0}], experiment="t")
        assert seed == derive_seed(
            cell_key("t", {"benchmark": "bv", "mid": 2.0}), base=0)

    def test_seeds_are_enumeration_order_independent(self):
        narrow = grid_map(echo_task, [Cell("bv", 3.0)], experiment="t")
        wide = grid_map(
            echo_task, [Cell("bv", 2.0), Cell("bv", 3.0), Cell("qaoa", 1.0)],
            experiment="t")
        assert narrow[0] in wide

    def test_parallel_equals_serial(self, tmp_path):
        cells = [Cell("bv", float(mid)) for mid in range(1, 5)]
        with Session(jobs=1, cache_dir=str(tmp_path)).activate():
            serial = grid_map(echo_task, cells, experiment="t")
        with Session(jobs=2, cache_dir=str(tmp_path)).activate():
            parallel = grid_map(echo_task, cells, experiment="t")
        assert parallel == serial

    def test_experiment_namespaces_isolate_seeds(self):
        [a] = grid_map(echo_task, [Cell("bv", 3.0)], experiment="one")
        [b] = grid_map(echo_task, [Cell("bv", 3.0)], experiment="two")
        assert a[2] != b[2]
