"""Unit tests for the lookahead interaction weights (§III-A)."""

import math

import pytest

from repro.circuits import Circuit, CircuitDag, Frontier
from repro.circuits.gates import ccx, cx, h, x
from repro.core.weights import (
    InteractionWeights,
    frontier_weights,
    initial_weights,
    weights_from_layers,
)


class TestInteractionWeights:
    def test_symmetric(self):
        w = InteractionWeights()
        w.add(3, 1, 2.0)
        assert w.weight(1, 3) == 2.0
        assert w.weight(3, 1) == 2.0

    def test_accumulates(self):
        w = InteractionWeights()
        w.add(0, 1, 1.0)
        w.add(1, 0, 0.5)
        assert w.weight(0, 1) == pytest.approx(1.5)

    def test_partners(self):
        w = InteractionWeights()
        w.add(0, 1, 1.0)
        w.add(0, 2, 2.0)
        assert w.partners(0) == {1: 1.0, 2: 2.0}
        assert w.partners(9) == {}

    def test_total_weight(self):
        w = InteractionWeights()
        w.add(0, 1, 1.0)
        w.add(0, 2, 2.0)
        assert w.total_weight(0) == pytest.approx(3.0)

    def test_heaviest_pair(self):
        w = InteractionWeights()
        w.add(0, 1, 1.0)
        w.add(2, 3, 5.0)
        assert w.heaviest_pair() == (2, 3)

    def test_heaviest_pair_empty(self):
        with pytest.raises(ValueError):
            InteractionWeights().heaviest_pair()


class TestWeightFunction:
    def test_frontier_gate_weight_one(self):
        # A gate in layer 0 contributes e^0 = 1.
        c = Circuit(2, [cx(0, 1)])
        w = initial_weights(CircuitDag(c))
        assert w.weight(0, 1) == pytest.approx(1.0)

    def test_exponential_decay_by_layer(self):
        # Three serial CX on the same pair: layers 0, 1, 2.
        c = Circuit(2, [cx(0, 1), cx(0, 1), cx(0, 1)])
        w = initial_weights(CircuitDag(c))
        expected = 1.0 + math.exp(-1.0) + math.exp(-2.0)
        assert w.weight(0, 1) == pytest.approx(expected)

    def test_custom_decay(self):
        c = Circuit(2, [cx(0, 1), cx(0, 1)])
        w = initial_weights(CircuitDag(c), decay=2.0)
        assert w.weight(0, 1) == pytest.approx(1.0 + math.exp(-2.0))

    def test_multiqubit_all_pairs(self):
        c = Circuit(3, [ccx(0, 1, 2)])
        w = initial_weights(CircuitDag(c))
        for pair in ((0, 1), (0, 2), (1, 2)):
            assert w.weight(*pair) == pytest.approx(1.0)

    def test_single_qubit_gates_ignored(self):
        c = Circuit(2, [h(0), x(1)])
        w = initial_weights(CircuitDag(c))
        assert len(w) == 0

    def test_layer_window_truncation(self):
        c = Circuit(2, [cx(0, 1) for _ in range(10)])
        w_full = initial_weights(CircuitDag(c), max_layers=10)
        w_short = initial_weights(CircuitDag(c), max_layers=2)
        assert w_short.weight(0, 1) < w_full.weight(0, 1)
        assert w_short.weight(0, 1) == pytest.approx(1.0 + math.exp(-1.0))


class TestFrontierWeights:
    def test_weights_shift_with_progress(self):
        # cx(0,1) then cx(1,2): initially (0,1) is frontier-weighted.
        c = Circuit(3, [cx(0, 1), cx(1, 2)])
        dag = CircuitDag(c)
        frontier = Frontier(dag)
        w0 = frontier_weights(frontier)
        assert w0.weight(0, 1) == pytest.approx(1.0)
        assert w0.weight(1, 2) == pytest.approx(math.exp(-1.0))
        frontier.complete(0)
        w1 = frontier_weights(frontier)
        assert w1.weight(0, 1) == 0.0
        assert w1.weight(1, 2) == pytest.approx(1.0)

    def test_weights_from_layers_direct(self):
        c = Circuit(2, [cx(0, 1)])
        dag = CircuitDag(c)
        w = weights_from_layers([[0]], dag)
        assert w.weight(0, 1) == pytest.approx(1.0)
