"""Edge-case regression tests for the shot runner (repro.loss.runner)."""

import pytest

from repro.core.config import CompilerConfig
from repro.hardware.loss import LossModel
from repro.hardware.topology import Topology
from repro.loss.runner import RunResult, ShotRunner
from repro.loss.strategies import make_strategy
from repro.workloads.registry import build_circuit

GRID_SIDE = 5
MID = 3.0


class ScriptedLoss:
    """Loss model stub: loses exactly the scripted sites, shot by shot."""

    def __init__(self, per_shot_losses):
        self.per_shot_losses = list(per_shot_losses)
        self.shot = 0

    def sample_shot_losses(self, all_sites, measured_sites, rng=None):
        losses = (self.per_shot_losses[self.shot]
                  if self.shot < len(self.per_shot_losses) else set())
        self.shot += 1
        return set(losses)


def _runner(strategy_name="always reload", loss_model=None):
    return ShotRunner(
        make_strategy(strategy_name),
        build_circuit("bv", 6),
        Topology.square(GRID_SIDE, MID),
        config=CompilerConfig(max_interaction_distance=MID),
        loss_model=loss_model or LossModel.none(),
        rng=0,
    )


# -- overhead_time with no run events (satellite regression) -----------------------


def test_overhead_time_without_run_events():
    """max_shots=0 leaves only the compile event in the timeline;
    overhead_time must not raise and equals the total."""
    result = _runner().run(max_shots=0)
    assert result.shots_attempted == 0
    assert result.overhead_time == pytest.approx(result.total_time)
    assert all(e.kind != "run" for e in result.timeline)


def test_overhead_time_empty_timeline():
    result = _runner().run(max_shots=0, include_compile_event=False)
    assert result.timeline == []
    assert result.overhead_time == 0.0
    assert result.total_time == 0.0


# -- target_successful = 0 ---------------------------------------------------------


def test_target_successful_zero_attempts_no_shots():
    result = _runner().run(max_shots=50, target_successful=0)
    assert result.shots_attempted == 0
    assert result.shots_successful == 0
    assert result.reload_count == 0
    assert result.shots_between_reloads == [0]
    assert result.mean_shots_between_reloads == 0.0


# -- reload on the very first shot -------------------------------------------------


def test_reload_on_first_shot():
    runner = _runner()
    used = runner.strategy.begin(
        runner.circuit, runner.topology.copy(), runner.config
    ).used_sites()
    victim = min(used)
    runner.loss_model = ScriptedLoss([{victim}])

    result = runner.run(max_shots=3)
    assert result.shots_attempted == 3
    # Shot 1 lost a program atom: not successful, triggers a reload.
    assert result.shots_successful == 2
    assert result.reload_count == 1
    assert result.interfering_losses == 1
    assert result.shots_between_reloads == [0, 2]
    # The reload refilled the array for the following shots.
    assert runner.topology.lost_sites == frozenset()


# -- several losses in one shot, first one already reloads -------------------------


class CountingReload:
    """Wrap a strategy, counting on_loss calls (delegates everything)."""

    def __init__(self, inner):
        self.inner = inner
        self.on_loss_calls = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def on_loss(self, site):
        self.on_loss_calls += 1
        return self.inner.on_loss(site)


def test_first_loss_reload_short_circuits_remaining_losses():
    runner = _runner()
    used = runner.strategy.begin(
        runner.circuit, runner.topology.copy(), runner.config
    ).used_sites()
    first, second = sorted(used)[0], sorted(used)[1]
    runner.loss_model = ScriptedLoss([{first, second}])
    runner.strategy = CountingReload(runner.strategy)

    result = runner.run(max_shots=1)
    # Always Reload gives up on the first interfering loss; the second
    # lost atom of the same shot must not reach the strategy (the reload
    # already restored it).
    assert runner.strategy.on_loss_calls == 1
    assert result.reload_count == 1
    assert result.interfering_losses + result.spare_losses == 1
    assert runner.topology.lost_sites == frozenset()


# -- mean_shots_between_reloads open-segment semantics (satellite regression) ------


def test_mean_shots_single_open_segment_is_whole_run():
    """No reloads: the one (open) segment IS the run, so the mean equals
    shots_successful — the open tail is only excluded when a reload closed
    at least one segment before it."""
    result = RunResult(
        strategy_name="x",
        shots_successful=7,
        reload_count=0,
        shots_between_reloads=[7],
    )
    assert result.mean_shots_between_reloads == 7.0


def test_mean_shots_multi_segment_drops_open_tail():
    """With reloads, only the closed segments count: the trailing open
    segment was cut short by the shot budget, not by a reload."""
    result = RunResult(
        strategy_name="x",
        shots_successful=9,
        reload_count=2,
        shots_between_reloads=[4, 2, 3],  # 3 is the open tail
    )
    assert result.mean_shots_between_reloads == pytest.approx(3.0)


def test_mean_shots_no_segments_recorded():
    result = RunResult(strategy_name="x", shots_successful=5)
    assert result.mean_shots_between_reloads == 5.0


def test_mean_shots_matches_runner_end_to_end():
    runner = _runner()
    used = runner.strategy.begin(
        runner.circuit, runner.topology.copy(), runner.config
    ).used_sites()
    victim = min(used)
    # Shot 1 succeeds, shot 2 loses a program atom and reloads (closing a
    # segment of 1 success); shots 3-5 are clean and form the open tail.
    runner.loss_model = ScriptedLoss([set(), {victim}, set(), set(), set()])
    result = runner.run(max_shots=5)
    assert result.reload_count == 1
    assert result.shots_between_reloads == [1, 3]
    assert result.mean_shots_between_reloads == pytest.approx(1.0)


def test_spare_losses_do_not_invalidate_shot():
    runner = _runner()
    used = runner.strategy.begin(
        runner.circuit, runner.topology.copy(), runner.config
    ).used_sites()
    spare = min(set(range(GRID_SIDE * GRID_SIDE)) - used)
    runner.loss_model = ScriptedLoss([{spare}])

    result = runner.run(max_shots=1)
    assert result.shots_successful == 1
    assert result.spare_losses == 1
    assert result.interfering_losses == 0
    assert result.reload_count == 0
