"""Unit tests for the timing and atom-loss hardware models."""

import pytest

from repro.hardware.loss import (
    EJECTION_READOUT_LOSS,
    LOSSLESS_READOUT_LOSS,
    VACUUM_LOSS_PROBABILITY,
    LossModel,
)
from repro.hardware.timing import TimingModel
from repro.utils.rng import ensure_rng


class TestTimingModel:
    def test_paper_defaults(self):
        t = TimingModel.paper_defaults()
        assert t.reload_time == pytest.approx(0.3)
        assert t.fluorescence_time == pytest.approx(6e-3)
        assert t.remap_time == pytest.approx(40e-9)

    def test_swap_duration_is_three_cx(self):
        t = TimingModel()
        assert t.swap_duration() == pytest.approx(3 * t.gate_duration(2))

    def test_gate_duration_fallback(self):
        t = TimingModel()
        assert t.gate_duration(5) == t.gate_duration(3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(reload_time=-1.0)

    def test_with_reload_time(self):
        t = TimingModel().with_reload_time(1.0)
        assert t.reload_time == 1.0
        assert t.fluorescence_time == pytest.approx(6e-3)


class TestLossModelRates:
    def test_paper_constants(self):
        m = LossModel.lossless_readout()
        assert m.vacuum_loss == VACUUM_LOSS_PROBABILITY
        assert m.measurement_loss == LOSSLESS_READOUT_LOSS

    def test_ejection_mode(self):
        m = LossModel.ejection_readout()
        assert m.measurement_loss == EJECTION_READOUT_LOSS

    def test_none(self):
        m = LossModel.none()
        assert m.expected_losses_per_shot(100, 30) == 0.0

    def test_improvement_scales_down(self):
        m = LossModel.lossless_readout(improvement_factor=10.0)
        assert m.effective_measurement_loss == pytest.approx(0.002)
        assert m.effective_vacuum_loss == pytest.approx(0.00068)

    def test_improved_compounds(self):
        m = LossModel.lossless_readout().improved(2.0).improved(5.0)
        assert m.improvement_factor == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LossModel(vacuum_loss=2.0)
        with pytest.raises(ValueError):
            LossModel(improvement_factor=0.0)

    def test_expected_losses(self):
        m = LossModel(vacuum_loss=0.01, measurement_loss=0.5)
        expected = m.expected_losses_per_shot(10, 2)
        combined = 1 - (1 - 0.01) * (1 - 0.5)
        assert expected == pytest.approx(8 * 0.01 + 2 * combined)

    def test_expected_losses_all_sites_measured(self):
        # Boundary: num_measured == num_sites is valid (every atom read out).
        m = LossModel(vacuum_loss=0.01, measurement_loss=0.5)
        combined = 1 - (1 - 0.01) * (1 - 0.5)
        assert m.expected_losses_per_shot(10, 10) == pytest.approx(10 * combined)

    def test_expected_losses_measured_exceeds_sites(self):
        m = LossModel.lossless_readout()
        with pytest.raises(ValueError, match="num_measured"):
            m.expected_losses_per_shot(10, 11)

    def test_expected_losses_negative_inputs(self):
        m = LossModel.lossless_readout()
        with pytest.raises(ValueError, match="num_sites"):
            m.expected_losses_per_shot(-1, 0)
        with pytest.raises(ValueError, match="num_measured"):
            m.expected_losses_per_shot(10, -2)


class TestLossSampling:
    def test_zero_rates_no_losses(self):
        m = LossModel.none()
        assert m.sample_shot_losses(range(100), range(10), rng=0) == set()

    def test_certain_measurement_loss(self):
        m = LossModel(vacuum_loss=0.0, measurement_loss=1.0)
        lost = m.sample_shot_losses(range(10), [3, 4], rng=0)
        assert lost == {3, 4}

    def test_losses_within_array(self):
        m = LossModel(vacuum_loss=0.5, measurement_loss=0.5)
        lost = m.sample_shot_losses(range(20), range(5), rng=1)
        assert lost <= set(range(20))

    def test_statistical_rate(self):
        m = LossModel(vacuum_loss=0.0, measurement_loss=0.02)
        rng = ensure_rng(42)
        total = sum(
            len(m.sample_shot_losses(range(100), range(30), rng=rng))
            for _ in range(2000)
        )
        mean = total / 2000
        assert mean == pytest.approx(0.6, rel=0.2)  # 30 * 2%

    def test_deterministic_given_seed(self):
        m = LossModel.lossless_readout()
        a = m.sample_shot_losses(range(50), range(50), rng=7)
        b = m.sample_shot_losses(range(50), range(50), rng=7)
        assert a == b
