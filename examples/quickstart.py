"""Quickstart: compile a program for a neutral-atom device.

Builds a 30-qubit Cuccaro ripple-carry adder, compiles it for a 10x10
neutral-atom array at maximum interaction distance 3 (with native Toffoli
gates and restriction zones), and compares the result against a
superconducting-style baseline (distance-1 grid, everything decomposed).

Run:  python examples/quickstart.py
"""

from repro import CompilerConfig, NoiseModel, Topology, compile_circuit
from repro.workloads import build_circuit


def main() -> None:
    circuit = build_circuit("cuccaro", 30)
    print(f"source: cuccaro adder, {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates, depth {circuit.depth()}")

    # Neutral-atom compilation: MID 3, zones f(d)=d/2, native Toffolis.
    na_program = compile_circuit(
        circuit,
        Topology.square(10, max_interaction_distance=3.0),
        CompilerConfig(max_interaction_distance=3.0),
    )

    # Superconducting-style baseline: MID 1, no zones, 2-qubit gates only.
    sc_program = compile_circuit(
        circuit,
        Topology.square(10, max_interaction_distance=1.0),
        CompilerConfig.superconducting_like(),
    )

    print("\n              neutral atom    superconducting-like")
    for label, getter in [
        ("gates", lambda p: p.gate_count()),
        ("depth", lambda p: p.depth()),
        ("swaps", lambda p: p.swap_count),
    ]:
        print(f"  {label:10s} {getter(na_program):>10}    {getter(sc_program):>10}")

    na_noise = NoiseModel.neutral_atom()
    sc_noise = NoiseModel.superconducting_rome()
    print(f"\n  predicted success (NA, demonstrated fidelities): "
          f"{na_program.success_rate(na_noise):.3e}")
    print(f"  predicted success (SC, Rome-era fidelities):     "
          f"{sc_program.success_rate(sc_noise):.3e}")

    equal_noise = sc_noise.with_two_qubit_error(na_noise.two_qubit_error)
    print(f"  predicted success (SC at the SAME 2q error as NA): "
          f"{sc_program.success_rate(equal_noise):.3e}")
    print("\nAt matched error rates the NA compilation wins on gate count "
          "alone — the paper's §IV headline.")


if __name__ == "__main__":
    main()
