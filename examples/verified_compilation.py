"""End-to-end verified compilation of a quantum adder.

Compiles a 2-bit Cuccaro adder (natively in Toffoli gates) onto a tiny
3x3 neutral-atom device, verifies the compiled schedule is semantically
equivalent to the source by exact statevector simulation, then actually
*runs* the physical schedule to add two numbers through the compiled
layout.  Finishes by exporting the source circuit as OpenQASM.

Run:  python examples/verified_compilation.py
"""

from repro import CompilerConfig, Topology, compile_circuit
from repro.circuits import to_qasm
from repro.core import check_compiled
from repro.sim import Statevector
from repro.workloads.cuccaro import (
    cuccaro_adder,
    cuccaro_registers,
    encode_operands,
)

NUM_BITS = 2
A_VALUE, B_VALUE = 2, 3


def main() -> None:
    circuit = cuccaro_adder(NUM_BITS)
    program = compile_circuit(
        circuit,
        Topology.square(3, max_interaction_distance=2.0),
        CompilerConfig(max_interaction_distance=2.0),
    )
    print(f"compiled cuccaro-{circuit.num_qubits}: {program.summary()}")
    print(f"initial layout: {program.initial_layout}")
    print(f"final layout:   {program.final_layout}")

    print(f"\nsemantic equivalence check: {check_compiled(program)}")

    # Run the *physical* schedule: embed the operands through the initial
    # layout, execute, and read the sum back through the final layout.
    logical_bits = encode_operands(A_VALUE, B_VALUE, NUM_BITS)
    physical_bits = ["0"] * (program.grid_shape[0] * program.grid_shape[1])
    for qubit, site in program.initial_layout.items():
        physical_bits[site] = logical_bits[qubit]
    state = Statevector.from_bitstring("".join(physical_bits))
    state.apply_circuit(program.to_physical_circuit())
    outcome = state.most_likely_bitstring()

    _, b_qubits, _, carry_out = cuccaro_registers(NUM_BITS)
    total = 0
    for k in range(NUM_BITS):
        total |= int(outcome[program.final_layout[b_qubits[k]]]) << k
    total |= int(outcome[program.final_layout[carry_out]]) << NUM_BITS
    print(f"\nphysical execution: {A_VALUE} + {B_VALUE} = {total}")
    assert total == A_VALUE + B_VALUE

    print("\nOpenQASM export of the source circuit:")
    print(to_qasm(circuit))


if __name__ == "__main__":
    main()
