"""Atom loss: compare coping strategies on a shot-by-shot simulation.

Runs a 30-qubit CNU on a 10x10 array at MID 4 under the paper's loss
model (2% measured-atom loss + vacuum collisions) for 200 shots with
each §VI strategy, then prints the overhead breakdown and renders the
execution timeline for the paper's recommended strategy
(Compile Small + Reroute).

Run:  python examples/atom_loss_strategies.py
"""

from repro import CompilerConfig, LossModel, NoiseModel, Topology
from repro.loss import ShotRunner, make_strategy, render_timeline
from repro.workloads import build_circuit

STRATEGIES = [
    "always reload",
    "virtual remapping",
    "reroute",
    "compile small",
    "c. small+reroute",
]
MID = 4.0
SHOTS = 200


def main() -> None:
    noise = NoiseModel.neutral_atom()
    circuit = build_circuit("cnu", 30)
    print(f"program: cnu-{circuit.num_qubits} on 10x10, MID {MID:g}, "
          f"{SHOTS} shots\n")
    print("strategy            ok/att  reloads  overhead   reload   fluor")

    for name in STRATEGIES:
        runner = ShotRunner(
            make_strategy(name, noise=noise),
            circuit,
            Topology.square(10, MID),
            config=CompilerConfig(max_interaction_distance=MID),
            noise=noise,
            loss_model=LossModel.lossless_readout(),
            rng=0,
        )
        result = runner.run(max_shots=SHOTS)
        kinds = result.time_by_kind()
        print(f"{name:18s} {result.shots_successful:4d}/{result.shots_attempted:<4d}"
              f" {result.reload_count:5d}   {result.overhead_time:7.2f}s"
              f" {kinds['reload']:7.2f}s {kinds['fluorescence']:6.2f}s")

    print("\ntimeline of 20 successful shots (compile small + reroute):")
    runner = ShotRunner(
        make_strategy("c. small+reroute", noise=noise),
        circuit,
        Topology.square(10, MID),
        config=CompilerConfig(max_interaction_distance=MID),
        noise=noise,
        rng=7,
    )
    result = runner.run(max_shots=2000, target_successful=20)
    print(render_timeline(result.timeline))
    print("\nReload count — not circuit time — dominates wall clock; "
          "that is the paper's §VI conclusion.")


if __name__ == "__main__":
    main()
