"""Long-range interactions: diminishing returns and serialization cost.

Sweeps the maximum interaction distance for one serial benchmark (BV) and
one parallel benchmark (QFT adder), showing:

* gate count falls steeply over the first few distance increments then
  flattens (Fig 3's message — hardware need not chase extreme range);
* for the parallel benchmark, restriction zones claw back some of the
  depth win at long range (Fig 4/5's message).

Run:  python examples/long_range_sweep.py
"""

from repro import CompilerConfig, Topology, compile_circuit
from repro.workloads import build_circuit

MIDS = [1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 13.0]


def sweep(name: str, size: int) -> None:
    circuit = build_circuit(name, size)
    print(f"\n{name}-{circuit.num_qubits}:")
    print("  MID    gates  depth  swaps   depth(no zones)")
    baseline = None
    for mid in MIDS:
        zoned = compile_circuit(
            circuit,
            Topology.square(10, mid),
            CompilerConfig(max_interaction_distance=mid, native_max_arity=2),
        )
        ideal = compile_circuit(
            circuit,
            Topology.square(10, mid),
            CompilerConfig(max_interaction_distance=mid, native_max_arity=2,
                           restriction_radius="none"),
        )
        if baseline is None:
            baseline = zoned.gate_count()
        saving = 1.0 - zoned.gate_count() / baseline
        print(f"  {mid:4g}  {zoned.gate_count():6d} {zoned.depth():6d} "
              f"{zoned.swap_count:6d}   {ideal.depth():6d}"
              f"    ({saving:5.1%} gate saving vs MID 1)")


def main() -> None:
    sweep("bv", 40)        # fully serial: zones nearly free
    sweep("qft-adder", 30)  # highly parallel: zones serialize
    print("\nMost of the gate-count benefit arrives by distance ~3-5; the "
          "gap between the last two columns is the restriction-zone cost.")


if __name__ == "__main__":
    main()
