"""Sweep-as-a-service: one grid, three execution surfaces.

Runs the same two-axis parameter sweep three ways and shows they are
the same sweep — identical canonical cells, identical per-cell store
keys, identical result envelopes:

1. locally, with ``Session.run_sweep`` over a result store;
2. replayed, demonstrating that every cell is read-through under its
   own store key (zero recomputation);
3. against an in-process ``repro.serve`` server with
   ``RemoteSession.iter_sweep``, consuming the per-cell stream as the
   server finalizes each cell — overlapping grids on the server share
   in-flight cells, so the second, overlapping sweep submitted below
   computes only its novel cell.

Run:  python examples/sweep_service.py
"""

import tempfile
import threading

from repro.api import RemoteSession, Session, SweepSpec
from repro.api.store import canonical_json
from repro.serve import build_server


def main() -> None:
    spec = SweepSpec(
        "ext-trapped-ion",
        axes={"program_size": (10, 20), "na_mid": (2.0, 3.0)},
        quick=True,
    )
    print(f"sweep: {spec!r}")
    for cell in spec.cells():
        print(f"  cell {cell.index}: {cell.params}  key={cell.key[:16]}…")

    # 1. Local execution, read-through against a store.
    store_dir = tempfile.mkdtemp(prefix="repro-sweep-store-")
    local = Session(store_dir=store_dir)
    result = local.run_sweep(spec)
    print(f"\nlocal run: {len(result)} cells computed "
          f"({local.misses} store misses)")

    # 2. Replay: every cell keys into the envelope the first run stored.
    replay = Session(store_dir=store_dir)
    replayed = replay.run_sweep(spec)
    assert canonical_json(replayed.to_dict()) == \
        canonical_json(result.to_dict())
    print(f"replay:    {replay.hits} hits, {replay.tasks_executed} tasks "
          "executed — byte-identical envelope")

    # 3. The same spec against a serving endpoint, streamed per cell.
    with tempfile.TemporaryDirectory() as served_store:
        server = build_server("127.0.0.1", 0, served_store,
                              workers=2, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            remote = RemoteSession(f"http://127.0.0.1:{server.port}")
            print(f"\nserver on port {server.port}; streaming cells:")
            for cell, cell_result in remote.iter_sweep(spec):
                print(f"  <- cell {cell.index} {cell.params} "
                      f"({type(cell_result).__name__})")

            # An overlapping grid: one of its two cells already lives
            # in the server's store from the sweep above — only the
            # novel program_size=30 cell computes.
            overlap = SweepSpec("ext-trapped-ion",
                                axes={"program_size": (20, 30)},
                                base={"na_mid": 3.0}, quick=True)
            remote.hits = remote.misses = 0
            remote.run_sweep(overlap)
            print(f"overlapping sweep: {remote.hits} cell(s) straight "
                  f"from the store, {remote.misses} computed")

            sweeps = remote.metrics()["sweeps"]
            print(f"server sweep counters: {sweeps}")
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)


if __name__ == "__main__":
    main()
